package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testSpec(id string) CampaignSpec {
	return CampaignSpec{
		ID:        id,
		Tenant:    "acme",
		TraceID:   "trace-1",
		SchemeRef: `{"design":"random-regular","n":64,"m":32,"seed":7}`,
		Noise:     "gaussian:0.5:7",
		Decoder:   "basis-pursuit",
		K:         3,
		Batch:     [][]int64{{1, -2, 3}, {4, 5, -6}},
	}
}

func testEvent(seq int64, idx int) EventRecord {
	return EventRecord{
		Seq:        seq,
		Index:      idx,
		Status:     StatusCompleted,
		Decoder:    "basis-pursuit",
		Residual:   -17,
		Consistent: true,
		DecodeNS:   123456,
		Support:    []int{3, 9, 41},
	}
}

func openTest(t *testing.T, dir string, policy SyncPolicy) *WAL {
	t.Helper()
	w, err := Open(dir, Options{Sync: policy})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		mode SyncMode
		ivl  time.Duration
		err  bool
	}{
		{"", SyncAlways, 0, false},
		{"always", SyncAlways, 0, false},
		{"off", SyncOff, 0, false},
		{"250ms", SyncInterval, 250 * time.Millisecond, false},
		{"2s", SyncInterval, 2 * time.Second, false},
		{"-1s", 0, 0, true},
		{"0s", 0, 0, true},
		{"sometimes", 0, 0, true},
	}
	for _, tc := range cases {
		p, err := ParseSyncPolicy(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseSyncPolicy(%q): want error, got %+v", tc.in, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSyncPolicy(%q): %v", tc.in, err)
			continue
		}
		if p.Mode != tc.mode || p.Interval != tc.ivl {
			t.Errorf("ParseSyncPolicy(%q) = %+v", tc.in, p)
		}
	}
}

func TestRecordRoundTrips(t *testing.T) {
	spec := testSpec("c1")
	rec, err := parsePayload(appendSpecPayload(nil, spec))
	if err != nil {
		t.Fatalf("parse spec: %v", err)
	}
	if rec.kind != recSpec || !reflect.DeepEqual(rec.spec, spec) {
		t.Fatalf("spec round-trip: got %+v", rec.spec)
	}

	ev := testEvent(4, 1)
	ev.Status = StatusFailed
	ev.Error = "decode blew up"
	ev.Consistent = false
	ev.Support = nil
	rec, err = parsePayload(appendEventPayload(nil, ev))
	if err != nil {
		t.Fatalf("parse event: %v", err)
	}
	if rec.kind != recEvent || !reflect.DeepEqual(rec.event, ev) {
		t.Fatalf("event round-trip: got %+v want %+v", rec.event, ev)
	}

	rec, err = parsePayload(appendCancelPayload(nil))
	if err != nil || rec.kind != recCancel {
		t.Fatalf("cancel round-trip: %v %+v", err, rec)
	}

	seal := Seal{State: "done", Completed: 5, Failed: 1, Canceled: 2}
	rec, err = parsePayload(appendSealPayload(nil, seal))
	if err != nil {
		t.Fatalf("parse seal: %v", err)
	}
	if rec.kind != recSeal || rec.seal != seal {
		t.Fatalf("seal round-trip: got %+v", rec.seal)
	}
}

func TestRecordTruncatesLongStrings(t *testing.T) {
	ev := testEvent(1, 0)
	ev.Error = strings.Repeat("x", maxWALString+100)
	rec, err := parsePayload(appendEventPayload(nil, ev))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rec.event.Error) != maxWALString {
		t.Fatalf("error string not truncated: %d bytes", len(rec.event.Error))
	}
}

func TestLifecycle(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, SyncPolicy{Mode: SyncAlways})

	spec := testSpec("c1")
	if err := w.Begin(spec); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := w.Begin(spec); err == nil {
		t.Fatal("Begin twice for one campaign should fail")
	}
	if err := w.Append("c1", testEvent(1, 0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append("c1", testEvent(2, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Seal("c1", Seal{State: "done", Completed: 2}); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := w.Append("c1", testEvent(3, 0)); err == nil {
		t.Fatal("Append after Seal should fail")
	}

	logs, err := w.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(logs) != 1 {
		t.Fatalf("Recover: %d logs", len(logs))
	}
	lg := logs[0]
	if !reflect.DeepEqual(lg.Spec, spec) {
		t.Fatalf("spec mismatch: %+v", lg.Spec)
	}
	if len(lg.Events) != 2 || lg.Events[0].Seq != 1 || lg.Events[1].Seq != 2 {
		t.Fatalf("events: %+v", lg.Events)
	}
	if lg.Seal == nil || lg.Seal.State != "done" || lg.Seal.Completed != 2 {
		t.Fatalf("seal: %+v", lg.Seal)
	}
	if lg.Truncated || lg.Canceled {
		t.Fatalf("unexpected flags: %+v", lg)
	}

	w.Remove("c1")
	if _, err := os.Stat(filepath.Join(dir, "c1.wal")); !os.IsNotExist(err) {
		t.Fatalf("log not removed: %v", err)
	}
}

func TestRecoverOrdersAndCancel(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, SyncPolicy{Mode: SyncOff})
	// Create out of numeric order; c10 > c2 must still sort numerically.
	for _, id := range []string{"c10", "c2"} {
		if err := w.Begin(testSpec(id)); err != nil {
			t.Fatalf("Begin %s: %v", id, err)
		}
	}
	if err := w.CancelMark("c2"); err != nil {
		t.Fatalf("CancelMark: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := openTest(t, dir, SyncPolicy{Mode: SyncOff})
	logs, err := w2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(logs) != 2 || logs[0].Spec.ID != "c2" || logs[1].Spec.ID != "c10" {
		t.Fatalf("order: %+v", logs)
	}
	if !logs[0].Canceled || logs[1].Canceled {
		t.Fatalf("cancel flags: %+v", logs)
	}
}

func TestResumeAppends(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	if err := w.Begin(testSpec("c1")); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := w.Append("c1", testEvent(1, 0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	w.Close()

	w2 := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	if _, err := w2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := w2.Resume("c1"); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := w2.Append("c1", testEvent(2, 1)); err != nil {
		t.Fatalf("Append after Resume: %v", err)
	}
	if err := w2.Seal("c1", Seal{State: "done", Completed: 2}); err != nil {
		t.Fatalf("Seal: %v", err)
	}

	logs, err := w2.Recover()
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if len(logs) != 1 || len(logs[0].Events) != 2 || logs[0].Seal == nil {
		t.Fatalf("resumed log: %+v", logs)
	}
}

// corruptAt flips one bit of the file at the given offset from the end
// (negative) or start (positive).
func corruptAt(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(data))
	}
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	if err := w.Begin(testSpec("c1")); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := w.Append("c1", testEvent(1, 0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	path := filepath.Join(dir, "c1.wal")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	goodSize := fi.Size()
	if err := w.Append("c1", testEvent(2, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	w.Close()

	// Cut the last record in half: a torn write.
	fi, _ = os.Stat(path)
	if err := os.Truncate(path, (goodSize+fi.Size())/2); err != nil {
		t.Fatal(err)
	}

	w2 := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	logs, err := w2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(logs) != 1 || !logs[0].Truncated {
		t.Fatalf("want one truncated log: %+v", logs)
	}
	if len(logs[0].Events) != 1 || logs[0].Events[0].Seq != 1 {
		t.Fatalf("events after truncation: %+v", logs[0].Events)
	}
	// The tail must be physically gone: a second recovery is clean.
	fi, _ = os.Stat(path)
	if fi.Size() != goodSize {
		t.Fatalf("file not truncated to %d: %d", goodSize, fi.Size())
	}
	logs, err = w2.Recover()
	if err != nil || len(logs) != 1 || logs[0].Truncated {
		t.Fatalf("second Recover not clean: %v %+v", err, logs)
	}
}

func TestTornTailChecksum(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	if err := w.Begin(testSpec("c1")); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := w.Append("c1", testEvent(1, 0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	w.Close()

	// Flip a bit inside the final record's payload: checksum fails at
	// EOF, which is indistinguishable from a torn write — truncate.
	path := filepath.Join(dir, "c1.wal")
	corruptAt(t, path, -10)

	w2 := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	logs, err := w2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(logs) != 1 || !logs[0].Truncated || len(logs[0].Events) != 0 {
		t.Fatalf("want truncated log with no events: %+v", logs)
	}
}

func TestCorruptInteriorRefusesBoot(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	spec := testSpec("c1")
	if err := w.Begin(spec); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := w.Append("c1", testEvent(int64(i+1), i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	w.Close()

	// Flip a bit inside the spec record — well before the tail.
	path := filepath.Join(dir, "c1.wal")
	corruptAt(t, path, 20)

	w2 := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	_, err := w2.Recover()
	if err == nil {
		t.Fatal("Recover accepted interior corruption")
	}
	if !strings.Contains(err.Error(), "c1.wal") || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error should name file and offset: %v", err)
	}
}

func TestRecoverSkipsEmptyAndRefusesGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "c3.wal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	logs, err := w.Recover()
	if err != nil || len(logs) != 0 {
		t.Fatalf("empty file should be skipped: %v %+v", err, logs)
	}
	if _, err := os.Stat(filepath.Join(dir, "c3.wal")); !os.IsNotExist(err) {
		t.Fatal("empty log not cleaned up")
	}

	if err := os.WriteFile(filepath.Join(dir, "c4.wal"), []byte("not a log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Recover(); err == nil {
		t.Fatal("garbage file should refuse boot")
	}
}

func TestRecoverRefusesRenamedLog(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	if err := w.Begin(testSpec("c1")); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	w.Close()
	if err := os.Rename(filepath.Join(dir, "c1.wal"), filepath.Join(dir, "c9.wal")); err != nil {
		t.Fatal(err)
	}
	w2 := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	if _, err := w2.Recover(); err == nil {
		t.Fatal("renamed log should refuse boot")
	}
}

func TestIntervalSyncMarksClean(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, SyncPolicy{Mode: SyncInterval, Interval: 10 * time.Millisecond})
	if err := w.Begin(testSpec("c1")); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := w.Append("c1", testEvent(1, 0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.mu.Lock()
		lf := w.files["c1"]
		w.mu.Unlock()
		lf.mu.Lock()
		dirty := lf.dirty
		lf.mu.Unlock()
		if !dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never flushed the dirty log")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestNormalizeEvents(t *testing.T) {
	evs := []EventRecord{
		{Seq: 2, Index: 1}, {Seq: 1, Index: 0}, {Seq: 2, Index: 5},
		{Seq: 3, Index: 2}, {Seq: 5, Index: 4},
	}
	out := normalizeEvents(evs)
	if len(out) != 3 {
		t.Fatalf("want contiguous prefix of 3, got %+v", out)
	}
	if out[0].Seq != 1 || out[1].Seq != 2 || out[2].Seq != 3 {
		t.Fatalf("bad order: %+v", out)
	}
	if out[1].Index != 5 {
		t.Fatalf("duplicate seq should keep last write: %+v", out[1])
	}
	if normalizeEvents(nil) != nil {
		t.Fatal("nil in, nil out")
	}
	if got := normalizeEvents([]EventRecord{{Seq: 7}}); got != nil {
		t.Fatalf("gap at start should drop all: %+v", got)
	}
}

func TestNilWALIsNoOp(t *testing.T) {
	var w *WAL
	if err := w.Begin(testSpec("c1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("c1", testEvent(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.CancelMark("c1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal("c1", Seal{}); err != nil {
		t.Fatal(err)
	}
	w.Remove("c1")
	w.NoteRecovered("done")
	if logs, err := w.Recover(); err != nil || logs != nil {
		t.Fatal("nil Recover should be empty")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBadCampaignID(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, SyncPolicy{Mode: SyncAlways})
	for _, id := range []string{"", "../evil", "a/b", "."} {
		spec := testSpec(id)
		if err := w.Begin(spec); err == nil {
			t.Errorf("Begin(%q) should fail", id)
		}
	}
}
