package wal

import (
	"reflect"
	"testing"
)

// FuzzWALRecord drives the record payload parser with hostile input.
// The invariants:
//
//  1. parsePayload never panics and never allocates beyond the input's
//     own size class (the bounds checks reject hostile lengths first).
//  2. Any accepted payload round-trips: re-encoding the parsed record
//     and parsing again yields the same record. Varint encodings are
//     not forced canonical on input, so bytes may differ — the
//     semantic value must not.
//
// Seeds in testdata/fuzz/FuzzWALRecord cover a truncated record, a
// bit-flipped valid record, and a hostile claimed length; CI replays
// them via `make fuzz-seeds`.
func FuzzWALRecord(f *testing.F) {
	f.Add(appendSpecPayload(nil, CampaignSpec{
		ID: "c1", Tenant: "acme", TraceID: "t", SchemeRef: "{}",
		Noise: "exact", Decoder: "comp", K: 2,
		Batch: [][]int64{{1, -2}, {3, 4}},
	}))
	f.Add(appendEventPayload(nil, EventRecord{
		Seq: 3, Index: 1, Status: StatusCompleted, Decoder: "comp",
		Residual: -5, Consistent: true, DecodeNS: 99, Support: []int{0, 7},
	}))
	f.Add(appendEventPayload(nil, EventRecord{
		Seq: 1, Index: 0, Status: StatusFailed, Error: "boom",
	}))
	f.Add(appendCancelPayload(nil))
	f.Add(appendSealPayload(nil, Seal{State: "done", Completed: 4, Failed: 1}))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := parsePayload(data)
		if err != nil {
			return
		}
		var reenc []byte
		switch rec.kind {
		case recSpec:
			reenc = appendSpecPayload(nil, rec.spec)
		case recEvent:
			reenc = appendEventPayload(nil, rec.event)
		case recCancel:
			reenc = appendCancelPayload(nil)
		case recSeal:
			reenc = appendSealPayload(nil, rec.seal)
		default:
			t.Fatalf("accepted unknown kind %d", rec.kind)
		}
		rec2, err := parsePayload(reenc)
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v\noriginal: %x\nreencoded: %x", err, data, reenc)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round-trip mismatch:\n  first:  %+v\n  second: %+v", rec, rec2)
		}
	})
}
