// Package wal is the durability layer for campaigns: an append-only,
// length-prefixed, CRC32C-checksummed record log per campaign. A log
// starts with the campaign spec, accumulates one record per settled
// job, and ends with a terminal seal record. On boot, Recover replays
// every log in the directory — truncating a torn tail record, refusing
// boot on interior corruption — so the server can reconstruct finished
// campaigns read-only and re-dispatch unfinished work. The on-disk
// format and recovery semantics are specified in docs/durability.md.
package wal

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pooleddata/metrics"
)

// SyncMode selects when appended records are fsynced.
type SyncMode int

const (
	// SyncAlways fsyncs after every record: a crash loses at most the
	// record being written (which recovery truncates).
	SyncAlways SyncMode = iota
	// SyncInterval marks files dirty and fsyncs them from a background
	// ticker: a crash can lose up to one interval of settled events,
	// whose jobs simply re-dispatch on recovery.
	SyncInterval
	// SyncOff never fsyncs data records explicitly (the kernel page
	// cache decides). Spec, cancel, and seal records are still synced
	// under every mode — losing those would change campaign identity,
	// not just redo idempotent work.
	SyncOff
)

// SyncPolicy is a parsed -wal-fsync flag value.
type SyncPolicy struct {
	Mode     SyncMode
	Interval time.Duration // SyncInterval only
}

// ParseSyncPolicy parses "always", "off", or a positive Go duration
// ("250ms") selecting interval sync.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case "off":
		return SyncPolicy{Mode: SyncOff}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return SyncPolicy{}, fmt.Errorf("wal: fsync policy %q is not \"always\", \"off\", or a duration: %w", s, err)
	}
	if d <= 0 {
		return SyncPolicy{}, fmt.Errorf("wal: fsync interval %s must be positive", d)
	}
	return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
}

func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncOff:
		return "off"
	case SyncInterval:
		return p.Interval.String()
	default:
		return "always"
	}
}

// Options configures Open. Metrics and Logger may be nil.
type Options struct {
	Sync    SyncPolicy
	Metrics *metrics.Registry
	Logger  *slog.Logger
}

// WAL manages the per-campaign logs under one directory. All methods
// are safe on a nil receiver (no-ops), so callers can thread an
// optional journal without guarding every touch point.
type WAL struct {
	dir    string
	policy SyncPolicy
	log    *slog.Logger

	appends    *metrics.Counter
	bytes      *metrics.Counter
	fsyncSec   *metrics.Histogram
	recoveredV *metrics.CounterVec

	mu     sync.Mutex
	files  map[string]*logFile
	closed bool

	stop chan struct{} // closes the interval syncer
	done chan struct{} // syncer exited
}

// logFile is one campaign's open log.
type logFile struct {
	mu     sync.Mutex
	f      *os.File
	dirty  bool // has unsynced appends (SyncInterval)
	sealed bool
}

// Open prepares dir (creating it if needed) and returns a WAL ready for
// Recover and Begin. Instruments register into opts.Metrics; a nil
// registry is a valid no-op sink.
func Open(dir string, opts Options) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := opts.Metrics
	w := &WAL{
		dir:    dir,
		policy: opts.Sync,
		log:    log,
		appends: reg.Counter("pooled_wal_appends_total",
			"Records appended to campaign write-ahead logs.").With(),
		bytes: reg.Counter("pooled_wal_bytes_total",
			"Bytes appended to campaign write-ahead logs.").With(),
		fsyncSec: reg.Histogram("pooled_wal_fsync_seconds",
			"Latency of WAL fsync calls.", nil).With(),
		recoveredV: reg.Counter("pooled_wal_recovered_campaigns_total",
			"Campaigns replayed from the WAL at boot, by recovered state.", "state"),
		files: make(map[string]*logFile),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if w.policy.Mode == SyncInterval {
		go w.syncLoop()
	} else {
		close(w.done)
	}
	return w, nil
}

// Dir reports the directory the WAL writes under.
func (w *WAL) Dir() string {
	if w == nil {
		return ""
	}
	return w.dir
}

const logSuffix = ".wal"

// pathFor maps a campaign id to its log path. IDs are server-generated
// ("c17"), but validate anyway: an id must be a plain filename.
func (w *WAL) pathFor(id string) (string, error) {
	if id == "" || id != filepath.Base(id) || strings.HasPrefix(id, ".") {
		return "", fmt.Errorf("wal: campaign id %q is not a valid log name", id)
	}
	return filepath.Join(w.dir, id+logSuffix), nil
}

// fsync syncs one file and feeds the latency histogram.
func (w *WAL) fsync(f *os.File) error {
	start := time.Now()
	err := f.Sync()
	w.fsyncSec.ObserveDuration(time.Since(start))
	return err
}

// syncDir fsyncs the WAL directory so file creations and removals are
// themselves durable.
func (w *WAL) syncDir() {
	d, err := os.Open(w.dir)
	if err != nil {
		return
	}
	defer d.Close()
	w.fsync(d)
}

// lookup returns the open log for id.
func (w *WAL) lookup(id string) (*logFile, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, errors.New("wal: closed")
	}
	lf := w.files[id]
	if lf == nil {
		return nil, fmt.Errorf("wal: no open log for campaign %s", id)
	}
	return lf, nil
}

// register tracks an open log, refusing duplicates.
func (w *WAL) register(id string, lf *logFile) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: closed")
	}
	if _, dup := w.files[id]; dup {
		return fmt.Errorf("wal: campaign %s already has an open log", id)
	}
	w.files[id] = lf
	return nil
}

// Begin creates the log for a new campaign and writes its spec record.
// The spec is always fsynced regardless of policy: once Create returns
// an id to the client, the campaign must survive a crash.
func (w *WAL) Begin(spec CampaignSpec) error {
	if w == nil {
		return nil
	}
	path, err := w.pathFor(spec.ID)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	buf := append([]byte(nil), fileHeader[:]...)
	buf = appendRecord(buf, appendSpecPayload(nil, spec))
	if _, err := f.Write(buf); err == nil {
		err = w.fsync(f)
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: spec for %s: %w", spec.ID, err)
	}
	w.syncDir()
	w.appends.Inc()
	w.bytes.Add(float64(len(buf)))
	if err := w.register(spec.ID, &logFile{f: f}); err != nil {
		f.Close()
		return err
	}
	return nil
}

// Resume reopens an existing log for appending — used after Recover for
// campaigns that still have work to settle.
func (w *WAL) Resume(id string) error {
	if w == nil {
		return nil
	}
	path, err := w.pathFor(id)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := w.register(id, &logFile{f: f}); err != nil {
		f.Close()
		return err
	}
	return nil
}

// append frames payload onto id's log. alwaysSync forces an fsync
// regardless of policy (spec/cancel/seal records).
func (w *WAL) append(id string, payload []byte, alwaysSync bool) error {
	lf, err := w.lookup(id)
	if err != nil {
		return err
	}
	buf := appendRecord(nil, payload)
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.sealed {
		return fmt.Errorf("wal: campaign %s log is sealed", id)
	}
	// One Write syscall per record: nothing buffered in userspace for a
	// SIGKILL to throw away, and a torn write is at worst one tail
	// record, which recovery truncates.
	if _, err := lf.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append to %s: %w", id, err)
	}
	w.appends.Inc()
	w.bytes.Add(float64(len(buf)))
	switch {
	case alwaysSync || w.policy.Mode == SyncAlways:
		if err := w.fsync(lf.f); err != nil {
			return fmt.Errorf("wal: fsync %s: %w", id, err)
		}
		lf.dirty = false
	case w.policy.Mode == SyncInterval:
		lf.dirty = true
	}
	return nil
}

// Append journals one settled job.
func (w *WAL) Append(id string, ev EventRecord) error {
	if w == nil {
		return nil
	}
	return w.append(id, appendEventPayload(nil, ev), false)
}

// CancelMark journals a cancellation request. Always fsynced: a
// canceled campaign must not resurrect as running.
func (w *WAL) CancelMark(id string) error {
	if w == nil {
		return nil
	}
	return w.append(id, appendCancelPayload(nil), true)
}

// Seal writes the terminal record, fsyncs, and closes the log.
func (w *WAL) Seal(id string, s Seal) error {
	if w == nil {
		return nil
	}
	if err := w.append(id, appendSealPayload(nil, s), true); err != nil {
		return err
	}
	lf, err := w.lookup(id)
	if err != nil {
		return err
	}
	lf.mu.Lock()
	lf.sealed = true
	err = lf.f.Close()
	lf.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: close %s: %w", id, err)
	}
	return nil
}

// Remove deletes a campaign's log (GC of reaped campaigns). Errors are
// logged, not returned: retention must not wedge on a missing file.
func (w *WAL) Remove(id string) {
	if w == nil {
		return
	}
	path, err := w.pathFor(id)
	if err != nil {
		return
	}
	w.mu.Lock()
	lf := w.files[id]
	delete(w.files, id)
	w.mu.Unlock()
	if lf != nil {
		lf.mu.Lock()
		if !lf.sealed {
			lf.f.Close()
		}
		lf.sealed = true
		lf.mu.Unlock()
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		w.log.Warn("wal: remove failed", "campaign", id, "err", err)
		return
	}
	w.syncDir()
}

// NoteRecovered counts one replayed campaign in
// pooled_wal_recovered_campaigns_total.
func (w *WAL) NoteRecovered(state string) {
	if w == nil {
		return
	}
	w.recoveredV.With(state).Inc()
}

// syncLoop is the SyncInterval background syncer.
func (w *WAL) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.policy.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.syncDirty()
		}
	}
}

// syncDirty fsyncs every file with unsynced appends.
func (w *WAL) syncDirty() {
	w.mu.Lock()
	pending := make([]*logFile, 0, len(w.files))
	for _, lf := range w.files {
		pending = append(pending, lf)
	}
	w.mu.Unlock()
	for _, lf := range pending {
		lf.mu.Lock()
		if lf.dirty && !lf.sealed {
			if err := w.fsync(lf.f); err != nil {
				w.log.Warn("wal: interval fsync failed", "err", err)
			} else {
				lf.dirty = false
			}
		}
		lf.mu.Unlock()
	}
}

// Close stops the interval syncer, flushes dirty logs, and closes every
// open file. Unsealed logs stay on disk for the next boot to resume.
func (w *WAL) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	files := w.files
	w.files = make(map[string]*logFile)
	w.mu.Unlock()
	if w.policy.Mode == SyncInterval {
		close(w.stop)
	}
	<-w.done
	var firstErr error
	for id, lf := range files {
		lf.mu.Lock()
		if !lf.sealed {
			if lf.dirty {
				if err := w.fsync(lf.f); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("wal: fsync %s: %w", id, err)
				}
			}
			if err := lf.f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("wal: close %s: %w", id, err)
			}
			lf.sealed = true
		}
		lf.mu.Unlock()
	}
	return firstErr
}
