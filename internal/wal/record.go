package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// On-disk record encoding. A campaign log is a 5-byte file header
// ("pwal" + version byte) followed by a sequence of records, each
// framed as
//
//	uvarint(len(payload)) | payload | crc32c(payload) little-endian
//
// The payload begins with a one-byte record kind and uses the same
// varint framing discipline as internal/remote/frame.go: every claimed
// length is validated against the bytes actually remaining before any
// allocation, so a truncated, bit-flipped, or hostile log fails with a
// clean error and bounded allocation — never a panic or an
// attacker-sized make(). The full layout and its compatibility rules
// are specified in docs/durability.md.

const (
	walVersion = 1

	recSpec   byte = 1 // campaign spec: first record of every log
	recEvent  byte = 2 // one settled job
	recCancel byte = 3 // cancellation requested (log stays open)
	recSeal   byte = 4 // terminal: campaign reached a final state
)

// fileHeader opens every log file.
var fileHeader = [5]byte{'p', 'w', 'a', 'l', walVersion}

// castagnoli is the CRC32C polynomial table (same checksum family used
// by ext4 journals and RocksDB WALs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Parser allocation bounds. A record that claims more than these is
// rejected before any allocation happens.
const (
	maxWALString  = 4096    // any string field (writers truncate errors)
	maxWALJobs    = 1 << 20 // jobs per campaign
	maxWALCounts  = 1 << 24 // pooled counts per job (columns of y)
	maxWALSupport = 1 << 24 // support indices per event
	maxWALRecord  = 1 << 30 // total payload bytes
)

// Status classifies a settled job inside an event record, mirroring the
// completed/failed/canceled split campaign.Campaign tracks.
type Status byte

const (
	StatusCompleted Status = 0
	StatusFailed    Status = 1
	StatusCanceled  Status = 2
)

// CampaignSpec is the first record of every log: everything needed to
// rebuild the campaign and re-dispatch its jobs after a crash. The
// scheme is referenced, not embedded — SchemeRef is an opaque string
// the frontend resolves back to an *engine.Scheme at recovery time
// (seeded schemes rebuild deterministically; ad-hoc uploads resolve via
// the -snapshot registry).
type CampaignSpec struct {
	ID        string
	Tenant    string
	TraceID   string
	SchemeRef string
	Noise     string // noise.Model.String() compact form; noise.Parse inverse
	Decoder   string // decoder.Name(); "" means server default policy
	K         int
	Batch     [][]int64
}

// EventRecord journals one settled job. Seq is the campaign event-log
// sequence number the settle was assigned, so SSE Last-Event-ID resume
// stays exact across a restart.
type EventRecord struct {
	Seq        int64
	Index      int
	Status     Status
	Decoder    string
	Error      string
	Residual   int64
	Consistent bool
	DecodeNS   int64
	Support    []int
}

// Seal is the terminal record: the campaign reached a final state and
// the log is complete.
type Seal struct {
	State     string // done | canceled | expired
	Completed int
	Failed    int
	Canceled  int
}

// truncString bounds a string field before encoding. Only error
// messages can realistically exceed the cap; cutting them keeps every
// written record parseable.
func truncString(s string) string {
	if len(s) > maxWALString {
		return s[:maxWALString]
	}
	return s
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	s = truncString(s)
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendSpecPayload encodes a spec record payload.
func appendSpecPayload(buf []byte, spec CampaignSpec) []byte {
	buf = append(buf, recSpec)
	buf = appendString(buf, spec.ID)
	buf = appendString(buf, spec.Tenant)
	buf = appendString(buf, spec.TraceID)
	buf = appendString(buf, spec.SchemeRef)
	buf = appendString(buf, spec.Noise)
	buf = appendString(buf, spec.Decoder)
	buf = appendUvarint(buf, uint64(spec.K))
	buf = appendUvarint(buf, uint64(len(spec.Batch)))
	m := 0
	if len(spec.Batch) > 0 {
		m = len(spec.Batch[0])
	}
	buf = appendUvarint(buf, uint64(m))
	for _, y := range spec.Batch {
		for _, v := range y {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	return buf
}

// appendEventPayload encodes an event record payload. Supports are
// written as raw uvarints (not delta-encoded like the shard protocol):
// a crashed writer may leave anything on disk, and raw values round-trip
// even if a decoder ever returns an unsorted support.
func appendEventPayload(buf []byte, ev EventRecord) []byte {
	buf = append(buf, recEvent)
	buf = appendUvarint(buf, uint64(ev.Seq))
	buf = appendUvarint(buf, uint64(ev.Index))
	buf = append(buf, byte(ev.Status))
	buf = appendString(buf, ev.Decoder)
	buf = appendString(buf, ev.Error)
	buf = binary.AppendVarint(buf, ev.Residual)
	if ev.Consistent {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendUvarint(buf, uint64(ev.DecodeNS))
	buf = appendUvarint(buf, uint64(len(ev.Support)))
	for _, s := range ev.Support {
		buf = appendUvarint(buf, uint64(s))
	}
	return buf
}

func appendCancelPayload(buf []byte) []byte {
	return append(buf, recCancel)
}

func appendSealPayload(buf []byte, s Seal) []byte {
	buf = append(buf, recSeal)
	buf = appendString(buf, s.State)
	buf = appendUvarint(buf, uint64(s.Completed))
	buf = appendUvarint(buf, uint64(s.Failed))
	buf = appendUvarint(buf, uint64(s.Canceled))
	return buf
}

// appendRecord frames a payload: length prefix, payload, CRC32C.
func appendRecord(buf, payload []byte) []byte {
	buf = appendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
}

// record is one parsed payload; exactly one of the kind-specific fields
// is meaningful.
type record struct {
	kind  byte
	spec  CampaignSpec
	event EventRecord
	seal  Seal
}

// payloadReader walks a record payload with bounds-checked reads.
type payloadReader struct {
	data []byte
	pos  int
}

func (pr *payloadReader) remaining() int { return len(pr.data) - pr.pos }

func (pr *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(pr.data[pr.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: record truncated or varint overflow at byte %d", pr.pos)
	}
	pr.pos += n
	return v, nil
}

func (pr *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(pr.data[pr.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: record truncated or varint overflow at byte %d", pr.pos)
	}
	pr.pos += n
	return v, nil
}

func (pr *payloadReader) byte() (byte, error) {
	if pr.remaining() < 1 {
		return 0, fmt.Errorf("wal: record truncated at byte %d", pr.pos)
	}
	b := pr.data[pr.pos]
	pr.pos++
	return b, nil
}

func (pr *payloadReader) str() (string, error) {
	n, err := pr.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxWALString {
		return "", fmt.Errorf("wal: record string of %d bytes exceeds limit %d", n, maxWALString)
	}
	if int(n) > pr.remaining() {
		return "", fmt.Errorf("wal: record string of %d bytes exceeds remaining %d", n, pr.remaining())
	}
	s := string(pr.data[pr.pos : pr.pos+int(n)])
	pr.pos += int(n)
	return s, nil
}

// parsePayload decodes one record payload (kind byte onward; the length
// prefix and CRC are the framer's business).
func parsePayload(data []byte) (record, error) {
	pr := &payloadReader{data: data}
	kind, err := pr.byte()
	if err != nil {
		return record{}, err
	}
	rec := record{kind: kind}
	switch kind {
	case recSpec:
		rec.spec, err = pr.parseSpec()
	case recEvent:
		rec.event, err = pr.parseEvent()
	case recCancel:
		// no fields
	case recSeal:
		rec.seal, err = pr.parseSeal()
	default:
		return record{}, fmt.Errorf("wal: unknown record kind %d", kind)
	}
	if err != nil {
		return record{}, err
	}
	if pr.remaining() != 0 {
		return record{}, fmt.Errorf("wal: %d trailing bytes after record", pr.remaining())
	}
	return rec, nil
}

func (pr *payloadReader) parseSpec() (CampaignSpec, error) {
	var spec CampaignSpec
	var err error
	if spec.ID, err = pr.str(); err != nil {
		return spec, err
	}
	if spec.Tenant, err = pr.str(); err != nil {
		return spec, err
	}
	if spec.TraceID, err = pr.str(); err != nil {
		return spec, err
	}
	if spec.SchemeRef, err = pr.str(); err != nil {
		return spec, err
	}
	if spec.Noise, err = pr.str(); err != nil {
		return spec, err
	}
	if spec.Decoder, err = pr.str(); err != nil {
		return spec, err
	}
	k, err := pr.uvarint()
	if err != nil {
		return spec, err
	}
	if k > math.MaxInt32 {
		return spec, fmt.Errorf("wal: spec claims k=%d", k)
	}
	spec.K = int(k)
	jobs, err := pr.uvarint()
	if err != nil {
		return spec, err
	}
	if jobs > maxWALJobs {
		return spec, fmt.Errorf("wal: spec claims %d jobs, limit %d", jobs, maxWALJobs)
	}
	m, err := pr.uvarint()
	if err != nil {
		return spec, err
	}
	if m > maxWALCounts {
		return spec, fmt.Errorf("wal: spec claims %d counts per job, limit %d", m, maxWALCounts)
	}
	// Bound the total before allocating: jobs*m*8 must fit in what is
	// actually here (both factors are already capped well below overflow).
	if need := jobs * m * 8; need > uint64(pr.remaining()) {
		return spec, fmt.Errorf("wal: spec claims %d batch bytes, %d remain", need, pr.remaining())
	}
	spec.Batch = make([][]int64, jobs)
	for i := range spec.Batch {
		y := make([]int64, m)
		for p := range y {
			y[p] = int64(binary.LittleEndian.Uint64(pr.data[pr.pos:]))
			pr.pos += 8
		}
		spec.Batch[i] = y
	}
	return spec, nil
}

func (pr *payloadReader) parseEvent() (EventRecord, error) {
	var ev EventRecord
	seq, err := pr.uvarint()
	if err != nil {
		return ev, err
	}
	if seq > math.MaxInt64 {
		return ev, fmt.Errorf("wal: event claims seq %d", seq)
	}
	ev.Seq = int64(seq)
	idx, err := pr.uvarint()
	if err != nil {
		return ev, err
	}
	if idx >= maxWALJobs {
		return ev, fmt.Errorf("wal: event claims job index %d, limit %d", idx, maxWALJobs)
	}
	ev.Index = int(idx)
	st, err := pr.byte()
	if err != nil {
		return ev, err
	}
	if st > byte(StatusCanceled) {
		return ev, fmt.Errorf("wal: event has unknown status %d", st)
	}
	ev.Status = Status(st)
	if ev.Decoder, err = pr.str(); err != nil {
		return ev, err
	}
	if ev.Error, err = pr.str(); err != nil {
		return ev, err
	}
	if ev.Residual, err = pr.varint(); err != nil {
		return ev, err
	}
	c, err := pr.byte()
	if err != nil {
		return ev, err
	}
	if c > 1 {
		return ev, fmt.Errorf("wal: event has bool byte %d", c)
	}
	ev.Consistent = c == 1
	ns, err := pr.uvarint()
	if err != nil {
		return ev, err
	}
	if ns > math.MaxInt64 {
		return ev, fmt.Errorf("wal: event has out-of-range timing")
	}
	ev.DecodeNS = int64(ns)
	slen, err := pr.uvarint()
	if err != nil {
		return ev, err
	}
	// Each support index costs at least one byte on disk.
	if slen > maxWALSupport || int(slen) > pr.remaining() {
		return ev, fmt.Errorf("wal: event claims support of %d, %d bytes remain", slen, pr.remaining())
	}
	if slen > 0 {
		ev.Support = make([]int, slen)
		for p := range ev.Support {
			v, err := pr.uvarint()
			if err != nil {
				return ev, err
			}
			if v > math.MaxInt32 {
				return ev, fmt.Errorf("wal: event support index %d overflows", v)
			}
			ev.Support[p] = int(v)
		}
	}
	return ev, nil
}

func (pr *payloadReader) parseSeal() (Seal, error) {
	var s Seal
	var err error
	if s.State, err = pr.str(); err != nil {
		return s, err
	}
	counts := [3]*int{&s.Completed, &s.Failed, &s.Canceled}
	for _, dst := range counts {
		v, err := pr.uvarint()
		if err != nil {
			return s, err
		}
		if v > maxWALJobs {
			return s, fmt.Errorf("wal: seal count %d exceeds job limit", v)
		}
		*dst = int(v)
	}
	return s, nil
}
