package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Log is one recovered campaign log, ready for campaign.Store.Restore.
type Log struct {
	Path      string
	Spec      CampaignSpec
	Events    []EventRecord // normalized: sorted, deduped, contiguous from seq 1
	Canceled  bool          // a cancel record was journaled
	Seal      *Seal         // terminal record, if the log is complete
	Truncated bool          // a torn tail record was cut off
}

// Recover scans every log in the WAL directory and returns the
// campaigns it can reconstruct, ordered by campaign sequence number so
// restore re-admits them in creation order.
//
// The tail of a log is where a crash lands, so damage there is
// expected: a record whose bytes run out, or whose checksum fails with
// nothing after it, is a torn write — it is physically truncated away
// and recovery continues. Damage anywhere else means the disk lied
// (bit rot, tampering, a concurrent writer): that is not a crash
// artifact, and Recover refuses with an error naming the file and
// offset rather than serve a silently-wrong campaign.
func (w *WAL) Recover() ([]Log, error) {
	if w == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var logs []Log
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), logSuffix) {
			continue
		}
		path := filepath.Join(w.dir, ent.Name())
		lg, ok, err := w.recoverFile(path)
		if err != nil {
			return nil, err
		}
		if ok {
			logs = append(logs, lg)
		}
	}
	sort.SliceStable(logs, func(i, j int) bool {
		return campaignSeq(logs[i].Spec.ID) < campaignSeq(logs[j].Spec.ID)
	})
	return logs, nil
}

// campaignSeq extracts the numeric part of a "c<n>" campaign id for
// ordering (0 when the id has another shape).
func campaignSeq(id string) int64 {
	if len(id) < 2 || id[0] != 'c' {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// recoverFile replays one log. ok=false skips the file (never
// acknowledged to a client); a non-nil error refuses boot.
func (w *WAL) recoverFile(path string) (Log, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Log{}, false, fmt.Errorf("wal: %w", err)
	}
	if len(data) == 0 {
		// Created but never written: Begin fsyncs header+spec in one
		// write, so this campaign was never acknowledged. Drop it.
		w.log.Warn("wal: dropping empty log", "path", path)
		os.Remove(path)
		return Log{}, false, nil
	}
	if len(data) < len(fileHeader) || string(data[:4]) != string(fileHeader[:4]) {
		return Log{}, false, fmt.Errorf("wal: %s: bad file header (not a campaign log)", path)
	}
	if data[4] != walVersion {
		return Log{}, false, fmt.Errorf("wal: %s: unsupported log version %d (have %d)", path, data[4], walVersion)
	}

	lg := Log{Path: path}
	pos := len(fileHeader)
	first := true
	for pos < len(data) {
		recStart := pos
		payload, next, torn, ferr := readFramedRecord(data, pos)
		if ferr != nil {
			if !torn {
				return Log{}, false, fmt.Errorf("wal: %s: corrupt record at offset %d: %v", path, recStart, ferr)
			}
			if err := w.truncateTail(path, &lg, recStart, ferr); err != nil {
				return Log{}, false, err
			}
			break
		}
		rec, perr := parsePayload(payload)
		if perr != nil {
			// The frame checksummed clean but the payload is invalid —
			// tolerable only as the final record (a torn write can
			// produce any bytes); earlier it means real corruption.
			if next < len(data) {
				return Log{}, false, fmt.Errorf("wal: %s: corrupt record at offset %d: %v", path, recStart, perr)
			}
			if err := w.truncateTail(path, &lg, recStart, perr); err != nil {
				return Log{}, false, err
			}
			break
		}
		if first && rec.kind != recSpec {
			return Log{}, false, fmt.Errorf("wal: %s: first record has kind %d, want spec", path, rec.kind)
		}
		if !first && rec.kind == recSpec {
			return Log{}, false, fmt.Errorf("wal: %s: duplicate spec record at offset %d", path, recStart)
		}
		switch rec.kind {
		case recSpec:
			lg.Spec = rec.spec
		case recEvent:
			lg.Events = append(lg.Events, rec.event)
		case recCancel:
			lg.Canceled = true
		case recSeal:
			s := rec.seal
			lg.Seal = &s
		}
		first = false
		pos = next
		if lg.Seal != nil && pos < len(data) {
			return Log{}, false, fmt.Errorf("wal: %s: %d bytes after seal record", path, len(data)-pos)
		}
	}
	if first {
		// Header only — the spec write itself was torn. Same as empty:
		// the campaign was never acknowledged.
		w.log.Warn("wal: dropping log with no spec record", "path", path)
		os.Remove(path)
		return Log{}, false, nil
	}
	if want := filepath.Base(path); lg.Spec.ID+logSuffix != want {
		return Log{}, false, fmt.Errorf("wal: %s: spec names campaign %q (file renamed?)", path, lg.Spec.ID)
	}
	lg.Events = normalizeEvents(lg.Events)
	return lg, true, nil
}

// readFramedRecord decodes one record frame at pos: length prefix,
// payload, CRC32C. torn reports whether a failure is consistent with a
// torn tail write — the bytes simply run out at EOF, or the final
// checksum covers exactly the last bytes of the file. A checksum
// mismatch with data after it cannot be a torn write and is flagged as
// interior corruption instead.
func readFramedRecord(data []byte, pos int) (payload []byte, next int, torn bool, err error) {
	n, used := binary.Uvarint(data[pos:])
	if used <= 0 {
		return nil, 0, true, fmt.Errorf("torn length prefix at offset %d", pos)
	}
	start := pos
	pos += used
	if rem := uint64(len(data) - pos); n > rem || rem-n < 4 {
		return nil, 0, true, fmt.Errorf("record at offset %d claims %d bytes, %d remain", start, n, len(data)-pos)
	}
	if n > maxWALRecord {
		return nil, 0, false, fmt.Errorf("record at offset %d claims %d bytes, limit %d", start, n, maxWALRecord)
	}
	end := pos + int(n)
	payload = data[pos:end]
	want := binary.LittleEndian.Uint32(data[end : end+4])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, end+4 == len(data),
			fmt.Errorf("checksum mismatch at offset %d (got %08x want %08x)", start, got, want)
	}
	return payload, end + 4, false, nil
}

// truncateTail physically cuts a torn tail record off the log so the
// file is clean for Resume appends, and records the fact.
func (w *WAL) truncateTail(path string, lg *Log, offset int, cause error) error {
	w.log.Warn("wal: truncating torn tail record", "path", path, "offset", offset, "cause", cause)
	if err := os.Truncate(path, int64(offset)); err != nil {
		return fmt.Errorf("wal: %s: truncating torn tail at %d: %w", path, offset, err)
	}
	lg.Truncated = true
	// A seal or cancel read before a torn tail cannot exist: the seal is
	// the last record by construction, so a torn record after one is the
	// interior-garbage case caught above.
	return nil
}

// normalizeEvents sorts by seq, drops duplicates (last write wins), and
// keeps only the contiguous prefix starting at seq 1 — events past a
// gap are unreachable by the SSE cursor contract, and their jobs
// re-dispatch anyway.
func normalizeEvents(events []EventRecord) []EventRecord {
	if len(events) == 0 {
		return nil
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	out := events[:0]
	for _, ev := range events {
		if n := len(out); n > 0 && out[n-1].Seq == ev.Seq {
			out[n-1] = ev
			continue
		}
		if ev.Seq != int64(len(out))+1 {
			break
		}
		out = append(out, ev)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
