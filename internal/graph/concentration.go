package graph

import "math"

// Gamma is 1 − e^{−1/2}, the limiting probability that a fixed entry
// appears in a fixed query of the paper's design (each query draws Γ = n/2
// entries with replacement, so P[x_i ∈ a_j] = 1 − (1 − 1/n)^{n/2} → γ).
const Gamma = 0.3934693402873666 // 1 - exp(-0.5)

// ConcentrationReport quantifies how closely the realized degree sequence
// follows the high-probability event R of Lemma 3:
//
//	Δ_i  = m/2              + O(√(m ln n))
//	Δ*_i = (1 − e^{−1/2})·m + O(√(m ln n))
//
// MaxDegreeDev and MaxDistinctDev are the largest deviations of Δ_i and
// Δ*_i from their expectations, in units of √(m ln n). The event R holds
// "with constant c" when both are at most c.
type ConcentrationReport struct {
	ExpectedDegree   float64 // m/2
	ExpectedDistinct float64 // γ·m (finite-n corrected)
	MaxDegreeDev     float64
	MaxDistinctDev   float64
	Scale            float64 // √(m ln n)
}

// Concentration computes the report for graph g. For n < 2 the logarithmic
// scale is clamped so the report stays finite.
func (g *Bipartite) Concentration() ConcentrationReport {
	m := float64(g.m)
	n := float64(g.n)
	lnn := math.Log(math.Max(n, 2))
	scale := math.Sqrt(m * lnn)
	if scale == 0 {
		scale = 1
	}
	// Exact finite-n inclusion probability p = 1 − (1 − 1/n)^Γ with the
	// design's Γ = n/2 (ceil for odd n, matching the builder).
	gammaN := Gamma
	if g.n > 0 {
		gammaSz := float64((g.n + 1) / 2)
		gammaN = 1 - math.Pow(1-1/n, gammaSz)
	}
	rep := ConcentrationReport{
		ExpectedDegree:   m / 2,
		ExpectedDistinct: gammaN * m,
		Scale:            scale,
	}
	for i := 0; i < g.n; i++ {
		dev := math.Abs(float64(g.Degree(i))-rep.ExpectedDegree) / scale
		if dev > rep.MaxDegreeDev {
			rep.MaxDegreeDev = dev
		}
		dev = math.Abs(float64(g.DistinctDegree(i))-rep.ExpectedDistinct) / scale
		if dev > rep.MaxDistinctDev {
			rep.MaxDistinctDev = dev
		}
	}
	return rep
}

// HoldsWithin reports whether event R holds with deviation constant c,
// i.e. every degree is within c·√(m ln n) of its expectation.
func (r ConcentrationReport) HoldsWithin(c float64) bool {
	return r.MaxDegreeDev <= c && r.MaxDistinctDev <= c
}
