package graph

import (
	"testing"
)

// tiny builds the Fig. 1 example of the paper by hand:
// σ = (1,1,0,0,1,0,0), five queries. We only need the graph structure
// here; query results are exercised in the query package.
func tiny(t *testing.T) *Bipartite {
	t.Helper()
	// Query 0: {x0, x1, x2}, query 1: {x1, x3, x4}, query 2: {x0, x1, x4, x4}
	// (x4 twice: a multi-edge), query 3: {x2, x4}, query 4: {x5, x6, x0, x0}.
	qptr := []int64{0, 3, 6, 9, 11, 14}
	qent := []int32{0, 1, 2 /**/, 1, 3, 4 /**/, 0, 1, 4 /**/, 2, 4 /**/, 0, 5, 6}
	qmul := []int32{1, 1, 1 /**/, 1, 1, 1 /**/, 1, 1, 2 /**/, 1, 1 /**/, 2, 1, 1}
	g, err := New(7, qptr, qent, qmul)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestNewSizes(t *testing.T) {
	g := tiny(t)
	if g.N() != 7 || g.M() != 5 {
		t.Fatalf("N,M = %d,%d want 7,5", g.N(), g.M())
	}
	if g.HalfEdges() != 3+3+4+2+4 {
		t.Fatalf("HalfEdges = %d", g.HalfEdges())
	}
	if g.DistinctPairs() != 14 {
		t.Fatalf("DistinctPairs = %d", g.DistinctPairs())
	}
}

func TestQueryAccessors(t *testing.T) {
	g := tiny(t)
	ent, mul := g.QueryEntries(2)
	if len(ent) != 3 || ent[0] != 0 || ent[1] != 1 || ent[2] != 4 {
		t.Fatalf("QueryEntries(2) entries = %v", ent)
	}
	if mul[2] != 2 {
		t.Fatalf("QueryEntries(2) mults = %v, want multi-edge on x4", mul)
	}
	if g.QuerySize(2) != 4 {
		t.Fatalf("QuerySize(2) = %d, want 4", g.QuerySize(2))
	}
	if g.QueryDistinct(2) != 3 {
		t.Fatalf("QueryDistinct(2) = %d, want 3", g.QueryDistinct(2))
	}
	if g.QuerySize(4) != 4 || g.QueryDistinct(4) != 3 {
		t.Fatalf("query 4 size/distinct = %d/%d", g.QuerySize(4), g.QueryDistinct(4))
	}
}

func TestEntrySideDerivation(t *testing.T) {
	g := tiny(t)
	// x0 appears in queries 0, 2 (once each) and 4 (twice).
	qs, mu := g.EntryQueries(0)
	if len(qs) != 3 || qs[0] != 0 || qs[1] != 2 || qs[2] != 4 {
		t.Fatalf("EntryQueries(0) = %v", qs)
	}
	if mu[0] != 1 || mu[1] != 1 || mu[2] != 2 {
		t.Fatalf("EntryQueries(0) mults = %v", mu)
	}
	if g.Degree(0) != 4 {
		t.Fatalf("Degree(0) = %d, want 4", g.Degree(0))
	}
	if g.DistinctDegree(0) != 3 {
		t.Fatalf("DistinctDegree(0) = %d, want 3", g.DistinctDegree(0))
	}
	// x4: queries 1 (once), 2 (twice), 3 (once).
	if g.Degree(4) != 4 || g.DistinctDegree(4) != 3 {
		t.Fatalf("x4 degrees = %d/%d", g.Degree(4), g.DistinctDegree(4))
	}
	// x5, x6 appear only in query 4.
	if g.Degree(5) != 1 || g.DistinctDegree(6) != 1 {
		t.Fatal("x5/x6 degrees wrong")
	}
}

func TestDegreeIdentities(t *testing.T) {
	g := tiny(t)
	var sumDeg, sumSize int64
	for i := 0; i < g.N(); i++ {
		sumDeg += int64(g.Degree(i))
	}
	for j := 0; j < g.M(); j++ {
		sumSize += int64(g.QuerySize(j))
	}
	if sumDeg != sumSize || sumDeg != g.HalfEdges() {
		t.Fatalf("half-edge identity broken: Σdeg=%d Σsize=%d half=%d", sumDeg, sumSize, g.HalfEdges())
	}
}

func TestStats(t *testing.T) {
	g := tiny(t)
	st := g.Stats()
	if st.MinDegree != 1 || st.MaxDegree != 4 {
		t.Fatalf("degree range = [%d,%d], want [1,4]", st.MinDegree, st.MaxDegree)
	}
	if st.MaxDistinctDegree != 3 { // x0 in queries 0,2,4 (x1 ties)
		t.Fatalf("MaxDistinctDegree = %d", st.MaxDistinctDegree)
	}
	if st.MeanDegree <= 0 || st.MeanDistinctDegree <= 0 {
		t.Fatal("means must be positive")
	}
}

func TestStatsEmpty(t *testing.T) {
	g, err := New(0, []int64{0}, nil, nil)
	if err != nil {
		t.Fatalf("New empty: %v", err)
	}
	st := g.Stats()
	if st.MaxDegree != 0 {
		t.Fatal("empty graph stats should be zero")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		n    int
		qptr []int64
		qent []int32
		qmul []int32
	}{
		{"negative n", -1, []int64{0}, nil, nil},
		{"empty qptr", 3, nil, nil, nil},
		{"qptr not starting at 0", 3, []int64{1, 2}, []int32{0}, []int32{1}},
		{"length mismatch", 3, []int64{0, 2}, []int32{0}, []int32{1}},
		{"decreasing qptr", 3, []int64{0, 1, 0}, []int32{0}, []int32{1}},
		{"entry out of range", 3, []int64{0, 1}, []int32{3}, []int32{1}},
		{"negative entry", 3, []int64{0, 1}, []int32{-1}, []int32{1}},
		{"not increasing", 3, []int64{0, 2}, []int32{1, 1}, []int32{1, 1}},
		{"zero multiplicity", 3, []int64{0, 1}, []int32{0}, []int32{0}},
	}
	for _, tc := range cases {
		if _, err := New(tc.n, tc.qptr, tc.qent, tc.qmul); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

func TestStatsDistinctWeight(t *testing.T) {
	// x1 is in queries 0, 1, 2 → distinct degree 3; verify against x1's view.
	g := tiny(t)
	qs, _ := g.EntryQueries(1)
	if len(qs) != 3 {
		t.Fatalf("x1 distinct queries = %d, want 3", len(qs))
	}
}
