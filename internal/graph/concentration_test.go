package graph

import (
	"math"
	"testing"
)

func TestConcentrationOnRandomGraph(t *testing.T) {
	n, m, per := 1000, 100, 500
	qptr, qent, qmul := buildRandomCSR(n, m, per, 17)
	// Force unit multiplicities so Δ is comparable to the ⌈n/2⌉-pool
	// expectation m/2 (SampleK pools half the entries per query).
	for i := range qmul {
		qmul[i] = 1
	}
	g, err := New(n, qptr, qent, qmul)
	if err != nil {
		t.Fatal(err)
	}
	rep := g.Concentration()
	if rep.Scale <= 0 {
		t.Fatal("scale must be positive")
	}
	if math.Abs(rep.ExpectedDegree-float64(m)/2) > 1e-9 {
		t.Fatalf("expected degree %v, want m/2", rep.ExpectedDegree)
	}
	// Without-replacement half-pools concentrate even better than the
	// design's with-replacement draws: event R holds comfortably, though
	// the Δ* expectation (tuned to with-replacement γ) is biased here, so
	// only the Δ side is asserted tightly.
	if rep.MaxDegreeDev > 3 {
		t.Fatalf("degree deviation %v too large", rep.MaxDegreeDev)
	}
	if !rep.HoldsWithin(rep.MaxDegreeDev + rep.MaxDistinctDev + 1) {
		t.Fatal("HoldsWithin must accept its own deviations")
	}
	if rep.HoldsWithin(math.Min(rep.MaxDegreeDev, rep.MaxDistinctDev) / 2) {
		t.Fatal("HoldsWithin must reject a constant below the deviations")
	}
}

func TestConcentrationEmptyGraph(t *testing.T) {
	g, err := New(0, []int64{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := g.Concentration()
	if rep.MaxDegreeDev != 0 || rep.MaxDistinctDev != 0 {
		t.Fatal("empty graph should have zero deviations")
	}
	if !rep.HoldsWithin(0) {
		t.Fatal("empty graph trivially satisfies event R")
	}
}

func TestConcentrationTinyN(t *testing.T) {
	// n = 1: the log clamp keeps the scale finite.
	g, err := New(1, []int64{0, 1}, []int32{0}, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	rep := g.Concentration()
	if math.IsNaN(rep.MaxDegreeDev) || math.IsInf(rep.MaxDegreeDev, 0) {
		t.Fatalf("tiny-n deviation not finite: %v", rep.MaxDegreeDev)
	}
}
