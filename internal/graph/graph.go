// Package graph implements the random bipartite multigraph G = (V ∪ F, E)
// that underlies the pooling design of Gebhard et al.
//
// Entry-nodes V = {x_1, …, x_n} are the coordinates of the signal and
// query-nodes F = {a_1, …, a_m} are the pools. An edge of multiplicity
// A_ij records how often entry x_i was drawn into query a_j (the design
// samples with replacement, so multi-edges are expected and meaningful:
// a one-entry drawn twice contributes 2 to the query result).
//
// The graph is stored in dual CSR form — once indexed by query and once by
// entry — so both the query evaluation (∂a_j) and the decoder's
// neighborhood sums (∂x_i, ∂*x_i) are contiguous scans. The entry-side
// structure is derived from the query side deterministically and in
// parallel.
package graph

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Bipartite is an immutable bipartite multigraph between n entries and m
// queries. Build one with New; all methods are safe for concurrent use
// after construction.
type Bipartite struct {
	n int // number of entry-nodes
	m int // number of query-nodes

	// Query side: for query j, the distinct entries qent[qptr[j]:qptr[j+1]]
	// (sorted, strictly increasing) with multiplicities qmul at the same
	// positions. The multiset ∂a_j has Σ qmul = query size.
	qptr []int64
	qent []int32
	qmul []int32

	// Entry side, derived: for entry i, the distinct queries
	// eqry[eptr[i]:eptr[i+1]] (sorted) with multiplicities emul.
	eptr []int64
	eqry []int32
	emul []int32
}

// New assembles a Bipartite from query-side CSR data and derives the
// entry side. qptr must have length m+1 with qptr[0] == 0 and be
// non-decreasing; qent[qptr[j]:qptr[j+1]] must be strictly increasing
// values in [0, n); qmul entries must be >= 1.
func New(n int, qptr []int64, qent, qmul []int32) (*Bipartite, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative entry count %d", n)
	}
	if len(qptr) == 0 || qptr[0] != 0 {
		return nil, fmt.Errorf("graph: qptr must start with 0")
	}
	m := len(qptr) - 1
	if int64(len(qent)) != qptr[m] || len(qent) != len(qmul) {
		return nil, fmt.Errorf("graph: CSR arrays inconsistent: qptr end %d, |qent| %d, |qmul| %d",
			qptr[m], len(qent), len(qmul))
	}
	for j := 0; j < m; j++ {
		if qptr[j] > qptr[j+1] {
			return nil, fmt.Errorf("graph: qptr decreases at query %d", j)
		}
		prev := int32(-1)
		for p := qptr[j]; p < qptr[j+1]; p++ {
			e := qent[p]
			if e < 0 || int(e) >= n {
				return nil, fmt.Errorf("graph: query %d references entry %d outside [0,%d)", j, e, n)
			}
			if e <= prev {
				return nil, fmt.Errorf("graph: query %d entry list not strictly increasing at %d", j, e)
			}
			if qmul[p] < 1 {
				return nil, fmt.Errorf("graph: query %d has multiplicity %d < 1", j, qmul[p])
			}
			prev = e
		}
	}
	g := &Bipartite{n: n, m: m, qptr: qptr, qent: qent, qmul: qmul}
	g.buildEntrySide()
	return g, nil
}

// buildEntrySide derives (eptr, eqry, emul) from the query side. The fill
// is parallelized by entry blocks: each worker scans the full query-side
// arrays and keeps only entries in its block, so each entry's query list
// comes out sorted by query index and the result is deterministic
// regardless of scheduling.
func (g *Bipartite) buildEntrySide() {
	counts := make([]int64, g.n+1)
	for _, e := range g.qent {
		counts[e+1]++
	}
	for i := 0; i < g.n; i++ {
		counts[i+1] += counts[i]
	}
	g.eptr = counts
	total := g.eptr[g.n]
	g.eqry = make([]int32, total)
	g.emul = make([]int32, total)

	workers := runtime.GOMAXPROCS(0)
	if workers > g.n {
		workers = g.n
	}
	if workers < 1 {
		workers = 1
	}
	// With few pairs the scan overhead dominates; fall back to one pass.
	if total < 1<<14 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := int32(int64(w) * int64(g.n) / int64(workers))
		hi := int32(int64(w+1) * int64(g.n) / int64(workers))
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			cursor := make([]int64, hi-lo)
			for e := lo; e < hi; e++ {
				cursor[e-lo] = g.eptr[e]
			}
			for j := 0; j < g.m; j++ {
				for p := g.qptr[j]; p < g.qptr[j+1]; p++ {
					e := g.qent[p]
					if e < lo || e >= hi {
						continue
					}
					pos := cursor[e-lo]
					g.eqry[pos] = int32(j)
					g.emul[pos] = g.qmul[p]
					cursor[e-lo] = pos + 1
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// N returns the number of entry-nodes (signal length).
func (g *Bipartite) N() int { return g.n }

// M returns the number of query-nodes (pools).
func (g *Bipartite) M() int { return g.m }

// QueryEntries returns the distinct entries of query j and their
// multiplicities. The returned slices alias internal storage and must not
// be modified.
func (g *Bipartite) QueryEntries(j int) (entries, mults []int32) {
	return g.qent[g.qptr[j]:g.qptr[j+1]], g.qmul[g.qptr[j]:g.qptr[j+1]]
}

// EntryQueries returns the distinct queries containing entry i (the set
// ∂*x_i) and the multiplicities with which i occurs in each. The returned
// slices alias internal storage and must not be modified.
func (g *Bipartite) EntryQueries(i int) (queries, mults []int32) {
	return g.eqry[g.eptr[i]:g.eptr[i+1]], g.emul[g.eptr[i]:g.eptr[i+1]]
}

// QuerySize returns |∂a_j| counted with multiplicity (Γ for the paper's
// design).
func (g *Bipartite) QuerySize(j int) int {
	var s int64
	for p := g.qptr[j]; p < g.qptr[j+1]; p++ {
		s += int64(g.qmul[p])
	}
	return int(s)
}

// QueryDistinct returns the number of distinct entries in query j.
func (g *Bipartite) QueryDistinct(j int) int {
	return int(g.qptr[j+1] - g.qptr[j])
}

// Degree returns Δ_i, the number of times entry i was drawn over all
// queries (multi-edges counted with multiplicity).
func (g *Bipartite) Degree(i int) int {
	var s int64
	for p := g.eptr[i]; p < g.eptr[i+1]; p++ {
		s += int64(g.emul[p])
	}
	return int(s)
}

// DistinctDegree returns Δ*_i = |∂*x_i|, the number of distinct queries
// containing entry i.
func (g *Bipartite) DistinctDegree(i int) int {
	return int(g.eptr[i+1] - g.eptr[i])
}

// HalfEdges returns the total number of half-edges Σ_j |∂a_j| (with
// multiplicity), i.e. m·Γ for the paper's design.
func (g *Bipartite) HalfEdges() int64 {
	var s int64
	for _, mu := range g.qmul {
		s += int64(mu)
	}
	return s
}

// DistinctPairs returns the number of (entry, query) incidences ignoring
// multiplicity.
func (g *Bipartite) DistinctPairs() int64 { return g.eptr[g.n] }

// DegreeStats summarizes the degree sequences of the graph; used both by
// diagnostics and by the concentration check below.
type DegreeStats struct {
	MinDegree, MaxDegree                 int
	MinDistinctDegree, MaxDistinctDegree int
	MeanDegree, MeanDistinctDegree       float64
}

// Stats computes degree statistics over all entry-nodes.
func (g *Bipartite) Stats() DegreeStats {
	if g.n == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{MinDegree: math.MaxInt, MinDistinctDegree: math.MaxInt}
	var sumDeg, sumDist int64
	for i := 0; i < g.n; i++ {
		d := g.Degree(i)
		dd := g.DistinctDegree(i)
		sumDeg += int64(d)
		sumDist += int64(dd)
		if d < st.MinDegree {
			st.MinDegree = d
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		if dd < st.MinDistinctDegree {
			st.MinDistinctDegree = dd
		}
		if dd > st.MaxDistinctDegree {
			st.MaxDistinctDegree = dd
		}
	}
	st.MeanDegree = float64(sumDeg) / float64(g.n)
	st.MeanDistinctDegree = float64(sumDist) / float64(g.n)
	return st
}
