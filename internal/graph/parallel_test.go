package graph

import (
	"runtime"
	"testing"

	"pooleddata/internal/rng"
)

// buildRandomCSR constructs a random valid query-side CSR directly (the
// graph package cannot depend on pooling, which would be a cycle).
func buildRandomCSR(n, m, perQuery int, seed uint64) (qptr []int64, qent, qmul []int32) {
	r := rng.NewRandSeeded(seed)
	qptr = make([]int64, m+1)
	for j := 0; j < m; j++ {
		picks := r.SampleK(n, perQuery)
		qptr[j+1] = qptr[j] + int64(len(picks))
		for _, e := range picks {
			qent = append(qent, int32(e))
			qmul = append(qmul, int32(1+r.Intn(3)))
		}
	}
	return
}

func TestEntrySideParallelFillMatchesSequential(t *testing.T) {
	// Large enough that buildEntrySide takes its multi-worker path once
	// GOMAXPROCS allows; results must be identical either way.
	n, m, per := 3000, 60, 300
	qptr, qent, qmul := buildRandomCSR(n, m, per, 11)

	old := runtime.GOMAXPROCS(1)
	gSeq, err := New(n, qptr, qent, qmul)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(6)
	gPar, err := New(n, qptr, qent, qmul)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		q1, m1 := gSeq.EntryQueries(i)
		q2, m2 := gPar.EntryQueries(i)
		if len(q1) != len(q2) {
			t.Fatalf("entry %d: lengths differ", i)
		}
		for p := range q1 {
			if q1[p] != q2[p] || m1[p] != m2[p] {
				t.Fatalf("entry %d: parallel fill differs at position %d", i, p)
			}
		}
	}
}

func TestEntrySideSortedByQuery(t *testing.T) {
	n, m, per := 2000, 40, 400
	qptr, qent, qmul := buildRandomCSR(n, m, per, 13)
	old := runtime.GOMAXPROCS(8)
	g, err := New(n, qptr, qent, qmul)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		qs, _ := g.EntryQueries(i)
		for p := 1; p < len(qs); p++ {
			if qs[p-1] >= qs[p] {
				t.Fatalf("entry %d: query list not strictly increasing", i)
			}
		}
	}
}
