package mn

import (
	"testing"

	"pooleddata/internal/thresholds"
)

func TestThresholdClassifierAboveThreshold(t *testing.T) {
	// Above threshold the classifier must find every one-entry; the
	// union bound over Θ(n) zeros leaves room for the occasional false
	// positive at finite n, so those are only bounded on average.
	n, k := 600, 8
	m := int(3 * thresholds.MN(n, k))
	exact, missed, extras := 0, 0, 0
	for seed := uint64(0); seed < 10; seed++ {
		g, sigma, y := instance(t, n, k, m, 50+seed)
		res := ReconstructThreshold(g, y, k, Options{})
		missed += k - res.Estimate.Overlap(sigma)
		if res.Estimate.Equal(sigma) {
			exact++
		}
		if extra := res.Estimate.Weight() - k; extra > 0 {
			extras += extra
		}
		if res.Alpha <= 0 || res.Alpha >= 1 {
			t.Fatalf("alpha %v outside (0,1)", res.Alpha)
		}
		if res.Threshold <= 0 {
			t.Fatalf("cut %v must be positive above threshold", res.Threshold)
		}
	}
	if exact < 5 {
		t.Fatalf("only %d/10 exact reconstructions at 3x threshold", exact)
	}
	if missed > 3 {
		t.Fatalf("%d missed one-entries over 10 runs", missed)
	}
	if extras > 10 {
		t.Fatalf("%d false positives over 10 runs", extras)
	}
}

func TestThresholdClassifierAgreesWithTopK(t *testing.T) {
	// Far above threshold both decision rules find exactly the same set
	// (the classifier's union-bound margin needs more headroom than the
	// top-k rule at finite n, hence the 5x operating point).
	for seed := uint64(0); seed < 5; seed++ {
		n, k := 500, 6
		m := int(5 * thresholds.MN(n, k))
		g, _, y := instance(t, n, k, m, 60+seed)
		topk := Reconstruct(g, y, k, Options{}).Estimate
		thr := ReconstructThreshold(g, y, k, Options{}).Estimate
		if !topk.Equal(thr) {
			t.Fatalf("seed %d: classifier and top-k disagree above threshold", seed)
		}
	}
}

func TestThresholdClassifierWeightFreedom(t *testing.T) {
	// Far below threshold the classifier's weight may drift from k — it
	// must not be forced to k (that is the point of the variant).
	n, k := 600, 8
	deviates := false
	for seed := uint64(0); seed < 10 && !deviates; seed++ {
		g, _, y := instance(t, n, k, 40, 70+seed)
		res := ReconstructThreshold(g, y, k, Options{})
		if res.Estimate.Weight() != k {
			deviates = true
		}
	}
	if !deviates {
		t.Fatal("classifier weight always exactly k even deep below threshold — looks like a hidden top-k")
	}
}

func TestThresholdClassifierFallbackAlpha(t *testing.T) {
	// Tiny m (d ≤ 4γ): α falls back to 1/2 and the call still works.
	g, _, y := instance(t, 200, 5, 10, 80)
	res := ReconstructThreshold(g, y, 5, Options{})
	if res.Alpha != 0.5 {
		t.Fatalf("alpha %v, want fallback 0.5", res.Alpha)
	}
}
