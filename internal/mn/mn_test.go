package mn

import (
	"math"
	"testing"
	"testing/quick"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/thresholds"
)

// instance builds a design, signal, and exact query results.
func instance(t testing.TB, n, k, m int, seed uint64) (*graph.Bipartite, *bitvec.Vector, []int64) {
	t.Helper()
	g, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(seed^0xdead))
	res := query.Execute(g, sigma, query.Options{Seed: seed})
	return g, sigma, res.Y
}

func TestReconstructExactAtGenerousM(t *testing.T) {
	// Well above the Theorem 1 threshold the reconstruction must be exact.
	n, k := 500, 8 // θ ≈ 0.33
	m := int(2 * thresholds.MN(n, k))
	g, sigma, y := instance(t, n, k, m, 1)
	res := Reconstruct(g, y, k, Options{})
	if !res.Estimate.Equal(sigma) {
		t.Fatalf("reconstruction failed with m=%d (overlap %.3f)",
			m, bitvec.OverlapFraction(sigma, res.Estimate))
	}
}

func TestReconstructWeightAlwaysK(t *testing.T) {
	// Even far below threshold the estimate must have exactly k ones.
	g, _, y := instance(t, 300, 10, 30, 2)
	res := Reconstruct(g, y, 10, Options{})
	if w := res.Estimate.Weight(); w != 10 {
		t.Fatalf("estimate weight %d, want 10", w)
	}
}

func TestReconstructZeroK(t *testing.T) {
	g, sigma, y := instance(t, 100, 0, 20, 3)
	res := Reconstruct(g, y, 0, Options{})
	if res.Estimate.Weight() != 0 || !res.Estimate.Equal(sigma) {
		t.Fatal("k=0 should yield the zero vector")
	}
}

func TestReconstructPanicsOnBadInput(t *testing.T) {
	g, _, y := instance(t, 100, 5, 20, 4)
	for _, f := range []func(){
		func() { Reconstruct(g, y[:10], 5, Options{}) },
		func() { Reconstruct(g, y, -1, Options{}) },
		func() { Reconstruct(g, y, 101, Options{}) },
		func() { ReconstructSequential(g, y[:10], 5) },
		func() { ReconstructSequential(g, y, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 50 + r.Intn(300)
		k := 1 + r.Intn(10)
		m := 10 + r.Intn(150)
		g, _, y := instance(t, n, k, m, seed)
		par := Reconstruct(g, y, k, Options{Workers: 4})
		seq := ReconstructSequential(g, y, k)
		return par.Estimate.Equal(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKeepScoresDiagnostics(t *testing.T) {
	g, sigma, y := instance(t, 200, 6, 300, 5)
	res := Reconstruct(g, y, 6, Options{KeepScores: true})
	if len(res.Scores) != 200 || len(res.Psi) != 200 || len(res.DistinctDeg) != 200 {
		t.Fatal("diagnostics missing")
	}
	// Ψ_i must equal the hand-computed neighborhood sum.
	for _, i := range []int{0, 17, 199} {
		qs, _ := g.EntryQueries(i)
		var want int64
		for _, j := range qs {
			want += y[j]
		}
		if res.Psi[i] != want {
			t.Fatalf("Ψ_%d = %d, want %d", i, res.Psi[i], want)
		}
		if res.DistinctDeg[i] != int64(len(qs)) {
			t.Fatalf("Δ*_%d = %d, want %d", i, res.DistinctDeg[i], len(qs))
		}
		wantScore := float64(want) - float64(len(qs))*3
		if math.Abs(res.Scores[i]-wantScore) > 1e-9 {
			t.Fatalf("score_%d = %v, want %v", i, res.Scores[i], wantScore)
		}
	}
	// Scores of true ones should on average exceed scores of zeros.
	var oneMean, zeroMean float64
	var ones, zeros int
	for i := 0; i < 200; i++ {
		if sigma.Get(i) {
			oneMean += res.Scores[i]
			ones++
		} else {
			zeroMean += res.Scores[i]
			zeros++
		}
	}
	if oneMean/float64(ones) <= zeroMean/float64(zeros) {
		t.Fatal("one-entries do not score higher on average")
	}
	// Without KeepScores the diagnostics must be absent.
	res2 := Reconstruct(g, y, 6, Options{})
	if res2.Scores != nil || res2.Psi != nil {
		t.Fatal("diagnostics retained without KeepScores")
	}
}

func TestMultiEdgesCountedOnceInPsi(t *testing.T) {
	// A fixed design where entry 0 has a multi-edge into query 0:
	// Ψ_0 must include y_0 once, not twice.
	d := pooling.Fixed{Queries: [][]int{
		{0, 0, 1}, // entry 0 twice
		{0, 2},
	}}
	g, err := d.Build(3, 2, pooling.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.FromIndices(3, []int{0})
	res := query.Execute(g, sigma, query.Options{})
	// y = (2, 1): the multi-edge contributes twice to the *query result*.
	if res.Y[0] != 2 || res.Y[1] != 1 {
		t.Fatalf("y = %v, want [2 1]", res.Y)
	}
	out := Reconstruct(g, res.Y, 1, Options{KeepScores: true})
	if out.Psi[0] != 3 { // y0 + y1, each once
		t.Fatalf("Ψ_0 = %d, want 3 (multi-edge must count once)", out.Psi[0])
	}
	if !out.Estimate.Get(0) {
		t.Fatal("failed to recover the planted one")
	}
}

func TestRecoveryRateImprovesWithM(t *testing.T) {
	// Monotone sanity: success over 20 trials should not degrade when m
	// doubles from half the threshold to twice the threshold.
	n, k := 400, 6
	mLow := int(0.4 * thresholds.MN(n, k))
	mHigh := int(2.2 * thresholds.MN(n, k))
	success := func(m int) int {
		s := 0
		for seed := uint64(0); seed < 20; seed++ {
			g, sigma, y := instance(t, n, k, m, seed*7+11)
			if Reconstruct(g, y, k, Options{}).Estimate.Equal(sigma) {
				s++
			}
		}
		return s
	}
	lo, hi := success(mLow), success(mHigh)
	if hi < lo {
		t.Fatalf("success degraded with more queries: %d/20 at m=%d vs %d/20 at m=%d", lo, mLow, hi, mHigh)
	}
	if hi < 18 {
		t.Fatalf("success only %d/20 at 2.2× threshold (m=%d)", hi, mHigh)
	}
}

func TestEstimateK(t *testing.T) {
	sigma := bitvec.Random(1000, 31, rng.NewRandSeeded(8))
	if EstimateK(sigma) != 31 {
		t.Fatal("EstimateK must reveal the exact weight")
	}
}

func TestReconstructAllOnes(t *testing.T) {
	// Degenerate k = n: estimate must be the all-ones vector.
	g, sigma, y := instance(t, 64, 64, 10, 9)
	res := Reconstruct(g, y, 64, Options{})
	if !res.Estimate.Equal(sigma) {
		t.Fatal("k=n reconstruction failed")
	}
}
