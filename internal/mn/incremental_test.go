package mn

import (
	"testing"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/parsort"
	"pooleddata/internal/thresholds"
)

// prefixEstimate decodes from scratch using only queries [0, prefix) —
// the reference the incremental decoder must match.
func prefixEstimate(g graphLike, y []int64, prefix, k int) *bitvec.Vector {
	n := g.N()
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		qs, _ := g.EntryQueries(i)
		var psi, dist int64
		for _, j := range qs {
			if int(j) < prefix {
				psi += y[j]
				dist++
			}
		}
		scores[i] = float64(psi) - float64(dist)*float64(k)/2
	}
	est := bitvec.New(n)
	for _, i := range parsort.TopK(scores, k) {
		est.Set(int(i))
	}
	return est
}

// graphLike is the slice of the graph API the reference decoder needs.
type graphLike interface {
	N() int
	EntryQueries(i int) (queries, mults []int32)
}

func TestIncrementalMatchesPrefixDecode(t *testing.T) {
	n, k, m := 300, 6, 200
	g, _, y := instance(t, n, k, m, 101)
	inc := NewIncremental(g)
	batch := 25
	for start := 0; start < m; start += batch {
		end := start + batch
		if end > m {
			end = m
		}
		qs := make([]int, 0, end-start)
		rs := make([]int64, 0, end-start)
		for j := start; j < end; j++ {
			qs = append(qs, j)
			rs = append(rs, y[j])
		}
		inc.AddBatch(qs, rs)
		if inc.Answered() != end {
			t.Fatalf("Answered = %d, want %d", inc.Answered(), end)
		}
		if !inc.Estimate(k).Equal(prefixEstimate(g, y, end, k)) {
			t.Fatalf("incremental estimate diverges from prefix decode after %d queries", end)
		}
	}
	// After all batches the estimate must equal the full decoder's.
	full := Reconstruct(g, y, k, Options{})
	if !inc.Estimate(k).Equal(full.Estimate) {
		t.Fatal("final incremental estimate differs from Reconstruct")
	}
}

func TestIncrementalOutOfOrderBatches(t *testing.T) {
	n, k, m := 200, 5, 120
	g, _, y := instance(t, n, k, m, 102)
	inc := NewIncremental(g)
	// Answer odd queries first, then even: set-equality with the full
	// decode must still hold (order of absorption is irrelevant).
	var qs []int
	var rs []int64
	for j := 1; j < m; j += 2 {
		qs = append(qs, j)
		rs = append(rs, y[j])
	}
	inc.AddBatch(qs, rs)
	qs, rs = nil, nil
	for j := 0; j < m; j += 2 {
		qs = append(qs, j)
		rs = append(rs, y[j])
	}
	inc.AddBatch(qs, rs)
	full := Reconstruct(g, y, k, Options{})
	if !inc.Estimate(k).Equal(full.Estimate) {
		t.Fatal("out-of-order absorption changed the estimate")
	}
}

func TestIncrementalPanics(t *testing.T) {
	g, _, y := instance(t, 100, 4, 30, 103)
	inc := NewIncremental(g)
	for name, fn := range map[string]func(){
		"length mismatch": func() { inc.AddBatch([]int{0, 1}, []int64{1}) },
		"out of range":    func() { inc.AddBatch([]int{99}, []int64{0}) },
		"bad k":           func() { inc.Estimate(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	// Duplicate absorption.
	inc.AddBatch([]int{3}, []int64{y[3]})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate query accepted")
		}
	}()
	inc.AddBatch([]int{3}, []int64{y[3]})
}

func TestIncrementalEarlyStopping(t *testing.T) {
	// Feed rounds of L queries; after each round, stop once the estimate
	// is consistent with everything answered. The stop point must come
	// before m, and the stopped estimate must be exactly σ.
	n, k := 400, 6
	m := int(2 * thresholds.MN(n, k))
	g, sigma, y := instance(t, n, k, m, 104)
	inc := NewIncremental(g)
	const L = 20
	stopped := -1
	for start := 0; start < m && stopped < 0; start += L {
		end := start + L
		if end > m {
			end = m
		}
		qs := make([]int, 0, L)
		rs := make([]int64, 0, L)
		for j := start; j < end; j++ {
			qs = append(qs, j)
			rs = append(rs, y[j])
		}
		inc.AddBatch(qs, rs)
		est := inc.Estimate(k)
		// Require a meaningful prefix before trusting consistency.
		if end >= m/4 && inc.ConsistentSoFar(est, y) {
			if !est.Equal(sigma) {
				t.Fatalf("consistent early estimate at %d queries is wrong", end)
			}
			stopped = end
		}
	}
	if stopped < 0 {
		t.Fatal("never became consistent, even at 2x threshold")
	}
	if stopped >= m {
		t.Fatal("no early stopping happened")
	}
}

func TestConsistentSoFarRejects(t *testing.T) {
	g, sigma, y := instance(t, 200, 5, 100, 105)
	inc := NewIncremental(g)
	qs := make([]int, 50)
	rs := make([]int64, 50)
	for j := range qs {
		qs[j] = j
		rs[j] = y[j]
	}
	inc.AddBatch(qs, rs)
	if !inc.ConsistentSoFar(sigma, y) {
		t.Fatal("σ must be consistent with its own results")
	}
	wrong := sigma.Clone()
	wrong.Flip(0)
	wrong.Flip(1)
	if inc.ConsistentSoFar(wrong, y) {
		t.Fatal("perturbed signal accepted as consistent")
	}
	if inc.ConsistentSoFar(sigma, y[:10]) {
		t.Fatal("short y accepted")
	}
}
