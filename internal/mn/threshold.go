package mn

import (
	"math"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/thresholds"
)

// This file implements the threshold form of the MN decision rule that the
// proof of Theorem 1 actually analyzes (Corollary 6): instead of ranking
// and taking the top k, classify entry x_j as one iff
//
//	S_j + Δ_j ≥ E[S_j] + (1−α)·m/2
//
// with the optimal α = (d − 4γ)/(2d) from the proof, d = m/(k·ln(n/k)).
// Unlike the top-k rule the classifier does not force the output weight to
// be exactly k, which makes it the natural variant when k is only known
// approximately — and its misclassifications directly expose the score
// separation the proof establishes.

// ClassifierResult is the output of ReconstructThreshold.
type ClassifierResult struct {
	// Estimate is the classified signal; its weight may differ from k.
	Estimate *bitvec.Vector
	// Threshold is the score cut T(α) that was applied.
	Threshold float64
	// Alpha is the separation parameter used.
	Alpha float64
}

// ReconstructThreshold classifies entries by the Corollary 6 threshold
// rule. k is used only to centralize scores and compute α; the output
// weight is whatever the classifier decides.
func ReconstructThreshold(g *graph.Bipartite, y []int64, k int, opts Options) *ClassifierResult {
	n := g.N()
	m := g.M()
	res := Reconstruct(g, y, k, Options{Workers: opts.Workers, KeepScores: true})

	// d = m / (k ln(n/k)); optimal α = (d − 4γ(1+o(1)))/(2d), clamped to
	// (0, 1). Below the threshold regime (d ≤ 4γ) fall back to α = 1/2.
	gamma := thresholds.GammaConst
	alpha := 0.5
	if k >= 1 && n > k {
		d := float64(m) / (float64(k) * math.Log(float64(n)/float64(k)))
		if d > 4*gamma {
			alpha = (d - 4*gamma) / (2 * d)
		}
	}
	// Score_j = Ψ_j − Δ*_j·k/2 concentrates around two class centers.
	// The proof works with E[S_j | E_j, R] = (1±δ)·γkm/2 and treats the
	// one/zero background difference (k vs k−1 out of n−1 candidates per
	// half-edge, Corollary 4) as a (1+o(1)) factor; at finite n that
	// difference is a Θ(m) shift of the centers, so the implementation
	// computes both centers exactly and places the Corollary 6 cut at
	// (1−α) of the way from the zero center to the one center.
	nf, kf, mf := float64(n), float64(k), float64(m)
	gammaSz := float64((n + 1) / 2)        // Γ
	distinct := gamma * mf                 // E[Δ*]
	degree := mf * gammaSz / nf            // E[Δ]
	aBar := degree / math.Max(distinct, 1) // mean multiplicity per distinct query
	other := gammaSz - aBar                // half-edges to other entries per query
	denom := math.Max(nf-1, 1)
	zeroCenter := distinct * (other*kf/denom - kf/2)
	oneCenter := degree + distinct*(other*(kf-1)/denom-kf/2)
	cut := zeroCenter + (1-alpha)*(oneCenter-zeroCenter)

	est := bitvec.New(n)
	for i := 0; i < n; i++ {
		if res.Scores[i] >= cut {
			est.Set(i)
		}
	}
	return &ClassifierResult{Estimate: est, Threshold: cut, Alpha: alpha}
}
