package mn

import (
	"fmt"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/parsort"
)

// Incremental is the MN-Algorithm restructured for the partially-parallel
// regime of §VI: when only L processing units exist, query results arrive
// in rounds of L, and the decoder can maintain its neighborhood sums
// incrementally — O(Σ |∂a_j| distinct) per batch — instead of recomputing
// Ψ from scratch. Combined with a consistency check this enables early
// stopping: the lab can halt the remaining rounds as soon as the current
// estimate explains all results received so far.
//
// The scores after every batch are identical to running Reconstruct on
// the prefix of answered queries (the design stays non-adaptive; only the
// schedule is staged).
type Incremental struct {
	g        *graph.Bipartite
	answered []bool
	psi      []int64 // Ψ_i over answered queries
	distinct []int64 // Δ*_i over answered queries
	count    int
}

// NewIncremental prepares an incremental decoder for design g.
func NewIncremental(g *graph.Bipartite) *Incremental {
	return &Incremental{
		g:        g,
		answered: make([]bool, g.M()),
		psi:      make([]int64, g.N()),
		distinct: make([]int64, g.N()),
	}
}

// Answered returns how many query results have been absorbed.
func (inc *Incremental) Answered() int { return inc.count }

// AddBatch absorbs the results of one round: queries[i] answered with
// results[i]. It panics on duplicate or out-of-range query indices
// (duplicate measurement of a pool indicates a pipeline bug).
func (inc *Incremental) AddBatch(queries []int, results []int64) {
	if len(queries) != len(results) {
		panic(fmt.Sprintf("mn: %d queries with %d results", len(queries), len(results)))
	}
	for i, j := range queries {
		if j < 0 || j >= inc.g.M() {
			panic(fmt.Sprintf("mn: query %d outside [0,%d)", j, inc.g.M()))
		}
		if inc.answered[j] {
			panic(fmt.Sprintf("mn: query %d answered twice", j))
		}
		inc.answered[j] = true
		inc.count++
		y := results[i]
		ents, _ := inc.g.QueryEntries(j)
		for _, e := range ents {
			inc.psi[e] += y
			inc.distinct[e]++
		}
	}
}

// Estimate ranks the entries by the current scores Ψ_i − Δ*_i·k/2 and
// returns the top-k signal — exactly what Reconstruct would return on the
// answered prefix.
func (inc *Incremental) Estimate(k int) *bitvec.Vector {
	n := inc.g.N()
	if k < 0 || k > n {
		panic(fmt.Sprintf("mn: weight k=%d out of [0,%d]", k, n))
	}
	scores := make([]float64, n)
	halfK := float64(k) / 2
	for i := 0; i < n; i++ {
		scores[i] = float64(inc.psi[i]) - float64(inc.distinct[i])*halfK
	}
	est := bitvec.New(n)
	for _, i := range parsort.TopK(scores, k) {
		est.Set(int(i))
	}
	return est
}

// ConsistentSoFar reports whether candidate est reproduces every answered
// query result exactly; y must be indexed by query id (only answered
// positions are consulted). This is the early-stopping predicate: once
// true (and k ≥ 1 queries are in), continuing the remaining rounds cannot
// change a correct decision.
func (inc *Incremental) ConsistentSoFar(est *bitvec.Vector, y []int64) bool {
	if len(y) != inc.g.M() {
		return false
	}
	for j := 0; j < inc.g.M(); j++ {
		if !inc.answered[j] {
			continue
		}
		ents, muls := inc.g.QueryEntries(j)
		var pred int64
		for p, e := range ents {
			if est.Get(int(e)) {
				pred += int64(muls[p])
			}
		}
		if pred != y[j] {
			return false
		}
	}
	return true
}
