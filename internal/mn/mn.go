// Package mn implements the Maximum Neighborhood (MN) Algorithm — the
// paper's core contribution (Algorithm 1).
//
// Given the pooling graph G and the query results y, the decoder computes
// for every entry x_i
//
//	Ψ_i  = Σ_{j ∈ ∂*x_i} y_j   (query results over *distinct* neighboring
//	                            queries — multi-edges counted once)
//	Δ*_i = |∂*x_i|             (number of distinct neighboring queries)
//
// and ranks the coordinates by the centralized score Ψ_i − Δ*_i·k/2. The k
// highest-scoring coordinates are declared ones. Theorem 1 shows this
// succeeds w.h.p. once m ≥ (1+ε)·m_MN(n,θ).
//
// The bulk phase is two parallel sparse matrix–vector products (Ψ = M·y,
// Δ* = M·1, §I "Parallelized Reconstruction") and the ranking is a
// parallel selection, so the decoder itself scales across cores.
package mn

import (
	"fmt"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/parsort"
	"pooleddata/internal/sparse"
)

// Options tunes the decoder.
type Options struct {
	// Workers bounds the goroutine pool for the SpMV phase; 0 means
	// GOMAXPROCS.
	Workers int
	// KeepScores retains the per-entry diagnostics (Ψ, Δ*, scores) on the
	// Result; experiments that only need the estimate can skip the copy.
	KeepScores bool
}

// Result is the decoder output.
type Result struct {
	// Estimate is the reconstructed signal: exactly k ones.
	Estimate *bitvec.Vector
	// Scores, Psi, DistinctDeg are per-entry diagnostics, present only
	// when Options.KeepScores is set.
	Scores      []float64
	Psi         []int64
	DistinctDeg []int64
}

// Reconstruct runs the MN-Algorithm on a prebuilt design graph and its
// query results, assuming the Hamming weight k is known (the paper shows
// one extra all-entries query removes this assumption; see EstimateK).
// It panics if len(y) != g.M() or k is outside [0, g.N()].
func Reconstruct(g *graph.Bipartite, y []int64, k int, opts Options) *Result {
	if len(y) != g.M() {
		panic(fmt.Sprintf("mn: %d query results for %d queries", len(y), g.M()))
	}
	n := g.N()
	if k < 0 || k > n {
		panic(fmt.Sprintf("mn: weight k=%d out of [0,%d]", k, n))
	}

	// Ψ = M·y with M the unweighted entry-side adjacency: multi-edges
	// collapse to a single 1, so each neighboring query's result counts
	// once, exactly as Algorithm 1 line 5 demands.
	m := sparse.EntryAdjacency(g)
	psi := m.MulVecParallel(y, nil, opts.Workers)

	// Score_i = Ψ_i − Δ*_i·k/2 (line 7). Δ* comes straight off the CSR.
	scores := make([]float64, n)
	halfK := float64(k) / 2
	distinct := make([]int64, n)
	for i := 0; i < n; i++ {
		d := int64(g.DistinctDegree(i))
		distinct[i] = d
		scores[i] = float64(psi[i]) - float64(d)*halfK
	}

	top := parsort.TopK(scores, k)
	est := bitvec.New(n)
	for _, i := range top {
		est.Set(int(i))
	}

	res := &Result{Estimate: est}
	if opts.KeepScores {
		res.Scores = scores
		res.Psi = psi
		res.DistinctDeg = distinct
	}
	return res
}

// ReconstructSequential is the textbook single-threaded rendition of
// Algorithm 1, kept as a differential-testing twin for the parallel path.
func ReconstructSequential(g *graph.Bipartite, y []int64, k int) *bitvec.Vector {
	if len(y) != g.M() {
		panic(fmt.Sprintf("mn: %d query results for %d queries", len(y), g.M()))
	}
	n := g.N()
	if k < 0 || k > n {
		panic(fmt.Sprintf("mn: weight k=%d out of [0,%d]", k, n))
	}
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		qs, _ := g.EntryQueries(i) // distinct queries of x_i
		var psi int64
		for _, j := range qs {
			psi += y[j]
		}
		scores[i] = float64(psi) - float64(len(qs))*float64(k)/2
	}
	// Stable ranking: score descending, index ascending.
	idx := parsort.SortDesc(scores)
	est := bitvec.New(n)
	for _, i := range idx[:k] {
		est.Set(int(i))
	}
	return est
}

// EstimateK returns the Hamming weight revealed by one additional query
// that pools every entry exactly once — the paper's device for removing
// the decoder's dependence on prior knowledge of k (§I.C). In the
// simulator this is simply the weight of σ, but routing it through the
// oracle keeps the information flow honest: the decoder sees only query
// results.
func EstimateK(sigma *bitvec.Vector) int {
	// An all-entries additive query returns Σ_i σ(i) = k exactly.
	return sigma.Weight()
}
