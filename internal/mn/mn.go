// Package mn implements the Maximum Neighborhood (MN) Algorithm — the
// paper's core contribution (Algorithm 1).
//
// Given the pooling graph G and the query results y, the decoder computes
// for every entry x_i
//
//	Ψ_i  = Σ_{j ∈ ∂*x_i} y_j   (query results over *distinct* neighboring
//	                            queries — multi-edges counted once)
//	Δ*_i = |∂*x_i|             (number of distinct neighboring queries)
//
// and ranks the coordinates by the centralized score Ψ_i − Δ*_i·k/2. The k
// highest-scoring coordinates are declared ones. Theorem 1 shows this
// succeeds w.h.p. once m ≥ (1+ε)·m_MN(n,θ).
//
// The bulk phase is two parallel sparse matrix–vector products (Ψ = M·y,
// Δ* = M·1, §I "Parallelized Reconstruction") and the ranking is a
// parallel selection, so the decoder itself scales across cores.
package mn

import (
	"fmt"
	"runtime"
	"sync"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/parsort"
)

// Options tunes the decoder.
type Options struct {
	// Workers bounds the goroutine pool for the SpMV phase; 0 means
	// GOMAXPROCS.
	Workers int
	// KeepScores retains the per-entry diagnostics (Ψ, Δ*, scores) on the
	// Result; experiments that only need the estimate can skip the copy.
	KeepScores bool
}

// Result is the decoder output.
type Result struct {
	// Estimate is the reconstructed signal: exactly k ones.
	Estimate *bitvec.Vector
	// Scores, Psi, DistinctDeg are per-entry diagnostics, present only
	// when Options.KeepScores is set.
	Scores      []float64
	Psi         []int64
	DistinctDeg []int64
}

// Reconstruct runs the MN-Algorithm on a prebuilt design graph and its
// query results, assuming the Hamming weight k is known (the paper shows
// one extra all-entries query removes this assumption; see EstimateK).
// It panics if len(y) != g.M() or k is outside [0, g.N()].
func Reconstruct(g *graph.Bipartite, y []int64, k int, opts Options) *Result {
	if len(y) != g.M() {
		panic(fmt.Sprintf("mn: %d query results for %d queries", len(y), g.M()))
	}
	n := g.N()
	if k < 0 || k > n {
		panic(fmt.Sprintf("mn: weight k=%d out of [0,%d]", k, n))
	}

	// Ψ = M·y with M the unweighted entry-side adjacency: multi-edges
	// collapse to a single 1, so each neighboring query's result counts
	// once, exactly as Algorithm 1 line 5 demands. The graph's entry-side
	// CSR already lists each entry's distinct queries, so Ψ is summed
	// straight off it — materializing the adjacency as a sparse matrix
	// (as earlier revisions did) costs a fresh O(n + incidences)
	// allocation per decode that GC-dominates batched workloads.
	// Binary responses (threshold oracles) additionally pack y into words
	// so the membership sum reads one bit, not one int64, per neighbor.
	scores := make([]float64, n)
	halfK := float64(k) / 2
	var psi, distinct []int64
	if opts.KeepScores {
		psi = make([]int64, n)
		distinct = make([]int64, n)
	}
	var yw []uint64
	if binaryResponses(y) {
		yw = make([]uint64, (len(y)+63)/64)
		for j, v := range y {
			yw[j>>6] |= uint64(v) << (uint(j) & 63)
		}
	}
	score := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			qs, _ := g.EntryQueries(i)
			var p int64
			if yw != nil {
				for _, j := range qs {
					p += int64(yw[j>>6] >> (uint(j) & 63) & 1)
				}
			} else {
				for _, j := range qs {
					p += y[j]
				}
			}
			d := int64(len(qs))
			if psi != nil {
				psi[i] = p
				distinct[i] = d
			}
			scores[i] = float64(p) - float64(d)*halfK
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// With few incidences the fan-out overhead dominates; run inline.
	if g.DistinctPairs() < 1<<14 {
		workers = 1
	}
	if workers <= 1 {
		score(0, n)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * n / workers
			hi := (w + 1) * n / workers
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				score(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	top := parsort.TopK(scores, k)
	est := bitvec.New(n)
	for _, i := range top {
		est.Set(int(i))
	}

	res := &Result{Estimate: est}
	if opts.KeepScores {
		res.Scores = scores
		res.Psi = psi
		res.DistinctDeg = distinct
	}
	return res
}

// binaryResponses reports whether every query result is 0 or 1 — the
// threshold-oracle shape whose Ψ sums reduce to packed bit reads.
func binaryResponses(y []int64) bool {
	for _, v := range y {
		if v&^1 != 0 {
			return false
		}
	}
	return true
}

// ReconstructSequential is the textbook single-threaded rendition of
// Algorithm 1, kept as a differential-testing twin for the parallel path.
func ReconstructSequential(g *graph.Bipartite, y []int64, k int) *bitvec.Vector {
	if len(y) != g.M() {
		panic(fmt.Sprintf("mn: %d query results for %d queries", len(y), g.M()))
	}
	n := g.N()
	if k < 0 || k > n {
		panic(fmt.Sprintf("mn: weight k=%d out of [0,%d]", k, n))
	}
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		qs, _ := g.EntryQueries(i) // distinct queries of x_i
		var psi int64
		for _, j := range qs {
			psi += y[j]
		}
		scores[i] = float64(psi) - float64(len(qs))*float64(k)/2
	}
	// Stable ranking: score descending, index ascending.
	idx := parsort.SortDesc(scores)
	est := bitvec.New(n)
	for _, i := range idx[:k] {
		est.Set(int(i))
	}
	return est
}

// EstimateK returns the Hamming weight revealed by one additional query
// that pools every entry exactly once — the paper's device for removing
// the decoder's dependence on prior knowledge of k (§I.C). In the
// simulator this is simply the weight of σ, but routing it through the
// oracle keeps the information flow honest: the decoder sees only query
// results.
func EstimateK(sigma *bitvec.Vector) int {
	// An all-entries additive query returns Σ_i σ(i) = k exactly.
	return sigma.Weight()
}
