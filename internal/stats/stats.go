// Package stats provides the small statistical toolkit of the experiment
// harness: streaming summaries, confidence intervals for success rates,
// and the monotone searches used to locate phase transitions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates moments of a sample via Welford's algorithm. The
// zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add inserts one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// String renders the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g±%.2g [%.4g,%.4g]", s.n, s.Mean(), s.StdErr(), s.min, s.max)
}

// Wilson returns the Wilson score interval for a binomial proportion with
// successes out of trials at confidence z (1.96 for 95%). It is the
// interval plotted around the success-rate curves.
func Wilson(successes, trials int, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// MinimalTrue finds the smallest x in [lo, hi] with pred(x) true, assuming
// pred is monotone (false … false true … true). It returns hi+1 when pred
// is false everywhere in range.
func MinimalTrue(lo, hi int, pred func(int) bool) int {
	ans := hi + 1
	for lo <= hi {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			ans = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return ans
}

// ExponentialBracket grows x from start by factor two until pred(x) is
// true (returning that x) or x would exceed cap (returning cap and the
// predicate value at cap).
func ExponentialBracket(start, cap int, pred func(int) bool) (int, bool) {
	if start < 1 {
		start = 1
	}
	x := start
	for x < cap {
		if pred(x) {
			return x, true
		}
		x *= 2
	}
	return cap, pred(cap)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample using linear
// interpolation between order statistics. The input is not modified.
func Quantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}
