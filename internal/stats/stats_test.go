package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 {
		t.Fatal("empty summary should be zero")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Var() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-observation summary wrong")
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		var s Summary
		var sum float64
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(v))
		return math.Abs(s.Mean()-mean) < 1e-8*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Var()-v) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := Wilson(50, 100, 1.96)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Fatalf("Wilson(50/100) = [%v,%v] should straddle 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval too wide: [%v,%v]", lo, hi)
	}
	// Edges stay within [0,1].
	lo, hi = Wilson(0, 10, 1.96)
	if lo != 0 || hi <= 0 {
		t.Fatalf("Wilson(0/10) = [%v,%v]", lo, hi)
	}
	lo, hi = Wilson(10, 10, 1.96)
	if hi != 1 || lo >= 1 {
		t.Fatalf("Wilson(10/10) = [%v,%v]", lo, hi)
	}
	lo, hi = Wilson(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatal("empty trials should give the vacuous interval")
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	lo1, hi1 := Wilson(5, 10, 1.96)
	lo2, hi2 := Wilson(500, 1000, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval should shrink with more trials")
	}
}

func TestMinimalTrue(t *testing.T) {
	got := MinimalTrue(0, 100, func(x int) bool { return x >= 37 })
	if got != 37 {
		t.Fatalf("MinimalTrue = %d, want 37", got)
	}
	if MinimalTrue(0, 10, func(int) bool { return false }) != 11 {
		t.Fatal("all-false should return hi+1")
	}
	if MinimalTrue(5, 10, func(int) bool { return true }) != 5 {
		t.Fatal("all-true should return lo")
	}
	if MinimalTrue(7, 7, func(x int) bool { return x == 7 }) != 7 {
		t.Fatal("single point failed")
	}
}

func TestMinimalTrueQuickAgainstLinear(t *testing.T) {
	f := func(seed uint64) bool {
		threshold := int(seed % 50)
		pred := func(x int) bool { return x >= threshold }
		want := threshold
		if threshold > 40 {
			want = threshold // still within [0,49] range check below
		}
		got := MinimalTrue(0, 49, pred)
		if threshold >= 50 {
			return got == 50
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialBracket(t *testing.T) {
	x, ok := ExponentialBracket(1, 1000, func(x int) bool { return x >= 100 })
	if !ok || x != 128 {
		t.Fatalf("bracket = (%d,%v), want (128,true)", x, ok)
	}
	x, ok = ExponentialBracket(1, 50, func(x int) bool { return x >= 100 })
	if ok || x != 50 {
		t.Fatalf("unreachable bracket = (%d,%v), want (50,false)", x, ok)
	}
	x, ok = ExponentialBracket(0, 10, func(x int) bool { return x >= 1 })
	if !ok || x != 1 {
		t.Fatalf("start clamp = (%d,%v)", x, ok)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{3, 1, 2, 4, 5}
	if Quantile(s, 0) != 1 || Quantile(s, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(s, 0.5) != 3 {
		t.Fatalf("median = %v, want 3", Quantile(s, 0.5))
	}
	if math.Abs(Quantile(s, 0.25)-2) > 1e-12 {
		t.Fatalf("q25 = %v, want 2", Quantile(s, 0.25))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be modified.
	if s[0] != 3 {
		t.Fatal("Quantile modified its input")
	}
}
