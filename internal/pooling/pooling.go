// Package pooling constructs pooling designs: the random bipartite
// multigraphs that decide which signal entries each query pools.
//
// The paper's design ("random regular") has every query draw exactly
// Γ = n/2 entries uniformly at random *with replacement*; multi-edges are
// kept and contribute multiply to query results. Two alternative designs —
// Bernoulli and constant column weight — are provided for ablation
// benchmarks, plus a Fixed design for golden tests.
//
// All builders are deterministic functions of (n, m, seed): queries (or
// entries, for the column design) sample from private SplitMix-derived
// streams indexed by their own position, so the result is identical no
// matter how many goroutines build it.
package pooling

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"pooleddata/internal/graph"
	"pooleddata/internal/rng"
)

// BuildOptions configures a design build.
type BuildOptions struct {
	// Seed is the master seed of the build. Two builds with equal
	// (design, n, m, Seed) produce identical graphs.
	Seed uint64
	// Parallelism bounds the number of worker goroutines; 0 means
	// runtime.GOMAXPROCS(0).
	Parallelism int
}

func (o BuildOptions) workers(items int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Design produces pooling graphs for given problem sizes.
type Design interface {
	// Name identifies the design in experiment output.
	Name() string
	// Build constructs the bipartite multigraph with n entries and m
	// queries.
	Build(n, m int, opts BuildOptions) (*graph.Bipartite, error)
}

// compressDraws sorts raw draws in place and collapses runs into
// (distinct entry, multiplicity) pairs appended to ent/mul, which are
// returned like append targets.
func compressDraws(draws []int32, ent, mul []int32) ([]int32, []int32) {
	sort.Slice(draws, func(a, b int) bool { return draws[a] < draws[b] })
	for i := 0; i < len(draws); {
		j := i + 1
		for j < len(draws) && draws[j] == draws[i] {
			j++
		}
		ent = append(ent, draws[i])
		mul = append(mul, int32(j-i))
		i = j
	}
	return ent, mul
}

// assemble concatenates per-query compressed lists into graph CSR form.
func assemble(n int, ents, muls [][]int32) (*graph.Bipartite, error) {
	m := len(ents)
	qptr := make([]int64, m+1)
	for j := 0; j < m; j++ {
		qptr[j+1] = qptr[j] + int64(len(ents[j]))
	}
	qent := make([]int32, qptr[m])
	qmul := make([]int32, qptr[m])
	for j := 0; j < m; j++ {
		copy(qent[qptr[j]:], ents[j])
		copy(qmul[qptr[j]:], muls[j])
	}
	return graph.New(n, qptr, qent, qmul)
}

// buildPerQuery runs sample(j, r) for every query j in parallel, where
// sample must fill and return the compressed (entries, mults) of query j
// using only r, which is a stream private to query j.
func buildPerQuery(n, m int, opts BuildOptions, sample func(j int, r *rng.Rand) ([]int32, []int32)) (*graph.Bipartite, error) {
	ents := make([][]int32, m)
	muls := make([][]int32, m)
	workers := opts.workers(m)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				r := rng.NewRand(rng.NewXoshiro(rng.DeriveSeed(opts.Seed, uint64(j))))
				ents[j], muls[j] = sample(j, r)
			}
		}(lo, hi)
	}
	wg.Wait()
	return assemble(n, ents, muls)
}

// RandomRegular is the paper's pooling design: each query independently
// draws Gamma entries uniformly at random with replacement.
type RandomRegular struct {
	// Gamma is the query size; 0 means the paper's default ⌈n/2⌉.
	Gamma int
}

// Name implements Design.
func (d RandomRegular) Name() string { return "random-regular" }

// GammaFor returns the query size used for signal length n.
func (d RandomRegular) GammaFor(n int) int {
	if d.Gamma > 0 {
		return d.Gamma
	}
	return (n + 1) / 2
}

// Build implements Design.
func (d RandomRegular) Build(n, m int, opts BuildOptions) (*graph.Bipartite, error) {
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("pooling: invalid size n=%d m=%d", n, m)
	}
	gamma := d.GammaFor(n)
	return buildPerQuery(n, m, opts, func(j int, r *rng.Rand) ([]int32, []int32) {
		draws := make([]int32, gamma)
		for t := range draws {
			draws[t] = int32(r.Uint64n(uint64(n)))
		}
		ent := make([]int32, 0, gamma)
		mul := make([]int32, 0, gamma)
		return compressDraws(draws, ent, mul)
	})
}

// Bernoulli is the i.i.d. design: each (entry, query) pair is connected by
// a single edge independently with probability P. No multi-edges.
type Bernoulli struct {
	// P is the inclusion probability; 0 means 1/2, which matches the
	// expected query size of the paper's design.
	P float64
}

// Name implements Design.
func (d Bernoulli) Name() string { return "bernoulli" }

func (d Bernoulli) prob() float64 {
	if d.P > 0 {
		return d.P
	}
	return 0.5
}

// Build implements Design.
func (d Bernoulli) Build(n, m int, opts BuildOptions) (*graph.Bipartite, error) {
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("pooling: invalid size n=%d m=%d", n, m)
	}
	p := d.prob()
	if p >= 1 {
		return nil, fmt.Errorf("pooling: Bernoulli probability %v must be < 1", p)
	}
	lq := math.Log1p(-p)
	return buildPerQuery(n, m, opts, func(j int, r *rng.Rand) ([]int32, []int32) {
		var ent, mul []int32
		// Geometric skip sampling: visit exactly the included entries.
		i := 0
		for {
			u := r.Float64()
			if u <= 0 {
				u = math.SmallestNonzeroFloat64
			}
			skip := int(math.Log(u) / lq)
			i += skip
			if i >= n {
				break
			}
			ent = append(ent, int32(i))
			mul = append(mul, 1)
			i++
		}
		return ent, mul
	})
}

// ConstantColumn gives every entry exactly D distinct queries, chosen
// uniformly without replacement — the near-regular column design common in
// group testing. No multi-edges.
type ConstantColumn struct {
	// D is the per-entry degree; 0 means round(γ·m), matching the
	// expected distinct degree Δ* of the paper's design.
	D int
}

// Name implements Design.
func (d ConstantColumn) Name() string { return "constant-column" }

// DFor returns the per-entry degree used with m queries.
func (d ConstantColumn) DFor(m int) int {
	if d.D > 0 {
		return d.D
	}
	v := int(math.Round(graph.Gamma * float64(m)))
	if v < 1 {
		v = 1
	}
	if v > m {
		v = m
	}
	return v
}

// Build implements Design.
func (d ConstantColumn) Build(n, m int, opts BuildOptions) (*graph.Bipartite, error) {
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("pooling: invalid size n=%d m=%d", n, m)
	}
	if m == 0 {
		return assemble(n, nil, nil)
	}
	deg := d.DFor(m)
	// Sample entry-side in parallel: entry i picks deg distinct queries.
	cols := make([][]int, n)
	workers := opts.workers(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				r := rng.NewRand(rng.NewXoshiro(rng.DeriveSeed(opts.Seed, uint64(i))))
				cols[i] = r.SampleK(m, deg)
			}
		}(lo, hi)
	}
	wg.Wait()
	// Transpose to query-side CSR. Entries are visited in increasing i, so
	// each query's list is automatically strictly increasing.
	qlen := make([]int, m)
	for _, qs := range cols {
		for _, q := range qs {
			qlen[q]++
		}
	}
	ents := make([][]int32, m)
	muls := make([][]int32, m)
	for j := 0; j < m; j++ {
		ents[j] = make([]int32, 0, qlen[j])
		muls[j] = make([]int32, 0, qlen[j])
	}
	for i, qs := range cols {
		for _, q := range qs {
			ents[q] = append(ents[q], int32(i))
			muls[q] = append(muls[q], 1)
		}
	}
	return assemble(n, ents, muls)
}

// Fixed wraps an explicit query list: Queries[j] is the multiset of
// entries pooled by query j (duplicates allowed, any order). Used for
// golden tests such as the paper's Fig. 1 example.
type Fixed struct {
	Queries [][]int
}

// Name implements Design.
func (d Fixed) Name() string { return "fixed" }

// Build implements Design. n must cover every referenced entry; m must
// equal len(d.Queries).
func (d Fixed) Build(n, m int, _ BuildOptions) (*graph.Bipartite, error) {
	if m != len(d.Queries) {
		return nil, fmt.Errorf("pooling: Fixed has %d queries, Build asked for %d", len(d.Queries), m)
	}
	ents := make([][]int32, m)
	muls := make([][]int32, m)
	for j, q := range d.Queries {
		draws := make([]int32, len(q))
		for t, e := range q {
			if e < 0 || e >= n {
				return nil, fmt.Errorf("pooling: Fixed query %d references entry %d outside [0,%d)", j, e, n)
			}
			draws[t] = int32(e)
		}
		ents[j], muls[j] = compressDraws(draws, nil, nil)
	}
	return assemble(n, ents, muls)
}
