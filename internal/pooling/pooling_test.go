package pooling

import (
	"math"
	"testing"
	"testing/quick"

	"pooleddata/internal/graph"
)

func TestRandomRegularQuerySizes(t *testing.T) {
	d := RandomRegular{}
	g, err := d.Build(100, 40, BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 || g.M() != 40 {
		t.Fatalf("sizes %d,%d", g.N(), g.M())
	}
	for j := 0; j < g.M(); j++ {
		if g.QuerySize(j) != 50 {
			t.Fatalf("query %d size %d, want Γ=50", j, g.QuerySize(j))
		}
		if g.QueryDistinct(j) > 50 || g.QueryDistinct(j) < 1 {
			t.Fatalf("query %d distinct %d out of range", j, g.QueryDistinct(j))
		}
	}
}

func TestRandomRegularOddN(t *testing.T) {
	d := RandomRegular{}
	if d.GammaFor(7) != 4 {
		t.Fatalf("GammaFor(7) = %d, want ⌈7/2⌉ = 4", d.GammaFor(7))
	}
	g, err := d.Build(7, 5, BuildOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < g.M(); j++ {
		if g.QuerySize(j) != 4 {
			t.Fatalf("query size %d, want 4", g.QuerySize(j))
		}
	}
}

func TestRandomRegularCustomGamma(t *testing.T) {
	d := RandomRegular{Gamma: 10}
	g, err := d.Build(1000, 5, BuildOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < g.M(); j++ {
		if g.QuerySize(j) != 10 {
			t.Fatalf("query size %d, want 10", g.QuerySize(j))
		}
	}
}

func TestRandomRegularDeterminismAcrossParallelism(t *testing.T) {
	d := RandomRegular{}
	a, err := d.Build(300, 60, BuildOptions{Seed: 42, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Build(300, 60, BuildOptions{Seed: 42, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(a, b) {
		t.Fatal("build differs between 1 and 8 workers")
	}
	c, err := d.Build(300, 60, BuildOptions{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if equalGraphs(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func equalGraphs(a, b *graph.Bipartite) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for j := 0; j < a.M(); j++ {
		ea, ma := a.QueryEntries(j)
		eb, mb := b.QueryEntries(j)
		if len(ea) != len(eb) {
			return false
		}
		for p := range ea {
			if ea[p] != eb[p] || ma[p] != mb[p] {
				return false
			}
		}
	}
	return true
}

func TestRandomRegularConcentration(t *testing.T) {
	// At moderate size the realized degrees must satisfy event R with a
	// small constant (Lemma 3).
	d := RandomRegular{}
	g, err := d.Build(2000, 400, BuildOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rep := g.Concentration()
	if !rep.HoldsWithin(3) {
		t.Fatalf("concentration violated: %+v", rep)
	}
	if math.Abs(rep.ExpectedDegree-200) > 1e-9 {
		t.Fatalf("expected degree %v, want m/2 = 200", rep.ExpectedDegree)
	}
	// Expected distinct degree ≈ γ·m.
	if math.Abs(rep.ExpectedDistinct-graph.Gamma*400) > 1 {
		t.Fatalf("expected distinct %v, want ≈ %v", rep.ExpectedDistinct, graph.Gamma*400)
	}
}

func TestRandomRegularMultiEdgesExist(t *testing.T) {
	// With Γ = n/2 draws from [n], collisions are essentially certain.
	d := RandomRegular{}
	g, err := d.Build(1000, 20, BuildOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	multi := false
	for j := 0; j < g.M() && !multi; j++ {
		_, mul := g.QueryEntries(j)
		for _, mu := range mul {
			if mu > 1 {
				multi = true
				break
			}
		}
	}
	if !multi {
		t.Fatal("no multi-edges in a with-replacement design (astronomically unlikely)")
	}
}

func TestRandomRegularInvalidSizes(t *testing.T) {
	d := RandomRegular{}
	if _, err := d.Build(0, 5, BuildOptions{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := d.Build(10, -1, BuildOptions{}); err == nil {
		t.Fatal("m=-1 accepted")
	}
	if g, err := d.Build(10, 0, BuildOptions{}); err != nil || g.M() != 0 {
		t.Fatalf("m=0 should give empty graph, got %v, %v", g, err)
	}
}

func TestBernoulliInclusionRate(t *testing.T) {
	d := Bernoulli{P: 0.3}
	g, err := d.Build(500, 200, BuildOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pairs := float64(g.DistinctPairs())
	want := 0.3 * 500 * 200
	if math.Abs(pairs-want)/want > 0.05 {
		t.Fatalf("Bernoulli pairs = %v, want about %v", pairs, want)
	}
	// No multi-edges in a Bernoulli design.
	for j := 0; j < g.M(); j++ {
		_, mul := g.QueryEntries(j)
		for _, mu := range mul {
			if mu != 1 {
				t.Fatal("Bernoulli produced a multi-edge")
			}
		}
	}
}

func TestBernoulliDefaultP(t *testing.T) {
	d := Bernoulli{}
	g, err := d.Build(400, 100, BuildOptions{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(g.DistinctPairs()) / (400 * 100)
	if math.Abs(rate-0.5) > 0.02 {
		t.Fatalf("default inclusion rate %v, want 0.5", rate)
	}
}

func TestBernoulliDeterminism(t *testing.T) {
	d := Bernoulli{P: 0.4}
	a, _ := d.Build(200, 50, BuildOptions{Seed: 5, Parallelism: 1})
	b, _ := d.Build(200, 50, BuildOptions{Seed: 5, Parallelism: 4})
	if !equalGraphs(a, b) {
		t.Fatal("Bernoulli build not deterministic across parallelism")
	}
}

func TestBernoulliRejectsP1(t *testing.T) {
	if _, err := (Bernoulli{P: 1}).Build(10, 10, BuildOptions{}); err == nil {
		t.Fatal("P=1 accepted")
	}
}

func TestConstantColumnExactDegrees(t *testing.T) {
	d := ConstantColumn{D: 7}
	g, err := d.Build(300, 40, BuildOptions{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		if g.DistinctDegree(i) != 7 || g.Degree(i) != 7 {
			t.Fatalf("entry %d degree %d/%d, want exactly 7", i, g.Degree(i), g.DistinctDegree(i))
		}
	}
}

func TestConstantColumnDefaultDegree(t *testing.T) {
	d := ConstantColumn{}
	if got, want := d.DFor(100), int(math.Round(graph.Gamma*100)); got != want {
		t.Fatalf("DFor(100) = %d, want %d", got, want)
	}
	if d.DFor(1) != 1 {
		t.Fatalf("DFor(1) = %d, want clamp to 1", d.DFor(1))
	}
}

func TestConstantColumnDeterminism(t *testing.T) {
	d := ConstantColumn{D: 5}
	a, _ := d.Build(150, 30, BuildOptions{Seed: 19, Parallelism: 1})
	b, _ := d.Build(150, 30, BuildOptions{Seed: 19, Parallelism: 6})
	if !equalGraphs(a, b) {
		t.Fatal("ConstantColumn build not deterministic across parallelism")
	}
}

func TestConstantColumnZeroQueries(t *testing.T) {
	g, err := ConstantColumn{D: 3}.Build(10, 0, BuildOptions{Seed: 1})
	if err != nil || g.M() != 0 {
		t.Fatalf("m=0: %v, %v", g, err)
	}
}

func TestFixedGoldenFig1(t *testing.T) {
	// The Fig. 1 bipartite graph of the paper (with one multi-edge).
	d := Fixed{Queries: [][]int{
		{0, 1, 2},
		{1, 3, 4},
		{0, 1, 4, 4},
		{2, 4},
		{0, 0, 5, 6},
	}}
	g, err := d.Build(7, 5, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.QuerySize(2) != 4 || g.QueryDistinct(2) != 3 {
		t.Fatal("multi-edge in query 2 lost")
	}
	if g.Degree(0) != 4 || g.DistinctDegree(0) != 3 {
		t.Fatalf("x0 degrees %d/%d", g.Degree(0), g.DistinctDegree(0))
	}
}

func TestFixedValidation(t *testing.T) {
	d := Fixed{Queries: [][]int{{0, 9}}}
	if _, err := d.Build(5, 1, BuildOptions{}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
	if _, err := d.Build(10, 2, BuildOptions{}); err == nil {
		t.Fatal("query count mismatch accepted")
	}
}

func TestQuickHalfEdgeIdentityAllDesigns(t *testing.T) {
	designs := []Design{RandomRegular{}, Bernoulli{P: 0.3}, ConstantColumn{D: 4}}
	f := func(seed uint64) bool {
		n := 20 + int(seed%80)
		m := 5 + int(seed%20)
		for _, d := range designs {
			g, err := d.Build(n, m, BuildOptions{Seed: seed})
			if err != nil {
				return false
			}
			var degSum, sizeSum int64
			for i := 0; i < g.N(); i++ {
				degSum += int64(g.Degree(i))
			}
			for j := 0; j < g.M(); j++ {
				sizeSum += int64(g.QuerySize(j))
			}
			if degSum != sizeSum || degSum != g.HalfEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
