package pooled

import (
	"context"
	"time"

	"pooleddata/internal/engine"
)

// This file is the public face of the reconstruction engine
// (internal/engine): a scheme cache plus a batched decode pipeline, the
// one-design/many-signals regime a screening lab or feature-selection
// service runs. cmd/pooledd serves exactly this API over HTTP.

// EngineOptions sizes an Engine.
type EngineOptions struct {
	// CacheCapacity is the maximum number of cached schemes; 0 means 8.
	CacheCapacity int
	// Workers is the decode worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the pending decode queue; 0 means 4·Workers.
	QueueDepth int
}

// EngineStats is a snapshot of an Engine's counters.
type EngineStats struct {
	// Scheme cache: builds executed, requests served from cache, requests
	// that joined an in-flight build instead of rebuilding, LRU evictions.
	SchemesBuilt  uint64
	CacheHits     uint64
	BuildsDeduped uint64
	Evictions     uint64

	// Decode pipeline.
	JobsSubmitted uint64
	JobsCompleted uint64
	JobsFailed    uint64
	JobsCanceled  uint64
	Consistent    uint64

	// Signals evaluated through the batched measurement path.
	SignalsMeasured uint64

	// Cumulative queue wait and decode time over completed jobs.
	TotalQueueWait  time.Duration
	TotalDecodeTime time.Duration
}

// DecodeResult is one pipelined reconstruction plus its per-job stats.
type DecodeResult struct {
	// Support is the recovered one-entry index set, ascending.
	Support []int
	// QueueWait is how long the job sat in the queue before a worker
	// picked it up.
	QueueWait time.Duration
	// DecodeTime is the time spent inside the decoder.
	DecodeTime time.Duration
	// Residual is the L1 misfit of the estimate against the counts.
	Residual int64
	// Consistent reports whether the estimate reproduces the counts
	// exactly.
	Consistent bool
}

// Engine amortizes design construction across requests (an LRU scheme
// cache with build deduplication) and pipelines decode jobs through a
// bounded worker pool. Safe for concurrent use; release the workers with
// Close when done.
type Engine struct {
	inner *engine.Engine
}

// NewEngine starts an engine.
func NewEngine(opts EngineOptions) *Engine {
	return &Engine{inner: engine.New(engine.Config{
		CacheCapacity: opts.CacheCapacity,
		Workers:       opts.Workers,
		QueueDepth:    opts.QueueDepth,
	})}
}

// Close drains the decode queue and stops the workers.
func (e *Engine) Close() { e.inner.Close() }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() EngineStats {
	st := e.inner.Stats()
	return EngineStats{
		SchemesBuilt:    st.SchemesBuilt,
		CacheHits:       st.CacheHits,
		BuildsDeduped:   st.BuildsDeduped,
		Evictions:       st.Evictions,
		JobsSubmitted:   st.JobsSubmitted,
		JobsCompleted:   st.JobsCompleted,
		JobsFailed:      st.JobsFailed,
		JobsCanceled:    st.JobsCanceled,
		Consistent:      st.Consistent,
		SignalsMeasured: st.SignalsMeasured,
		TotalQueueWait:  st.TotalQueueWait,
		TotalDecodeTime: st.TotalDecodeTime,
	}
}

// Scheme returns the cached scheme for (n, m, opts), building it at most
// once: concurrent callers for the same (design, n, m, seed) share a
// single pooling build, and repeated calls return the identical *Scheme.
func (e *Engine) Scheme(n, m int, opts Options) (*Scheme, error) {
	des, err := designFor(opts.Design)
	if err != nil {
		return nil, err
	}
	es, err := e.inner.Scheme(des, n, m, opts.Seed)
	if err != nil {
		return nil, err
	}
	s := schemeFromEngine(es, opts.Workers)
	if s.workers != opts.Workers {
		// The cached wrapper carries the first caller's worker preference.
		// A caller asking for a different one gets its own thin wrapper
		// around the same shared graph and engine scheme.
		return newWrapper(es, opts.Workers), nil
	}
	return s, nil
}

// newWrapper builds a public Scheme over a cached engine scheme.
func newWrapper(es *engine.Scheme, workers int) *Scheme {
	s := &Scheme{n: es.G.N(), m: es.G.M(), g: es.G, seed: es.Spec.Seed, workers: workers, es: es}
	s.esOnce.Do(func() {}) // es is already set; spend the Once
	return s
}

// schemeFromEngine wraps a cached engine scheme exactly once: the wrapper
// is stored on the scheme itself, so cache hits stay pointer-identical
// across the public API and the wrapper dies with the cached scheme.
func schemeFromEngine(es *engine.Scheme, workers int) *Scheme {
	return es.Ext(func() any { return newWrapper(es, workers) }).(*Scheme)
}

// engineScheme returns the engine-side view of s, wrapping ad-hoc schemes
// (pooled.New, LoadDesignCSV) on first use.
func (s *Scheme) engineScheme() *engine.Scheme {
	s.esOnce.Do(func() {
		if s.es == nil {
			s.es = &engine.Scheme{G: s.g}
		}
	})
	return s.es
}

// Decode runs one reconstruction through the engine's worker pool and
// reports the per-job pipeline stats alongside the support.
func (e *Engine) Decode(ctx context.Context, s *Scheme, y []int64, k int, kind DecoderKind) (DecodeResult, error) {
	dec, err := decoderFor(kind, s.workers)
	if err != nil {
		return DecodeResult{}, err
	}
	res, err := e.inner.Decode(ctx, engine.Job{Scheme: s.engineScheme(), Y: y, K: k, Dec: dec})
	if err != nil {
		return DecodeResult{}, err
	}
	return fromEngineResult(res), nil
}

// DecodeBatch pipelines one decode per count vector through the worker
// pool — the batched counterpart of ReconstructWith. Results are in input
// order; the first error is returned after all jobs settle.
func (e *Engine) DecodeBatch(ctx context.Context, s *Scheme, ys [][]int64, k int, kind DecoderKind) ([]DecodeResult, error) {
	dec, err := decoderFor(kind, s.workers)
	if err != nil {
		return nil, err
	}
	results, err := e.inner.DecodeBatch(ctx, s.engineScheme(), ys, k, engine.Job{Dec: dec})
	out := make([]DecodeResult, len(results))
	for i, r := range results {
		out[i] = fromEngineResult(r)
	}
	return out, err
}

// MeasureBatch is Scheme.MeasureBatch routed through the engine so the
// batch shows up in its counters.
func (e *Engine) MeasureBatch(s *Scheme, signals [][]bool) [][]int64 {
	return e.inner.MeasureBatch(s.engineScheme(), s.batchVectors(signals))
}

func fromEngineResult(r engine.Result) DecodeResult {
	return DecodeResult{
		Support:    r.Support,
		QueueWait:  r.Stats.QueueWait,
		DecodeTime: r.Stats.DecodeTime,
		Residual:   r.Stats.Residual,
		Consistent: r.Stats.Consistent,
	}
}
