package pooled

import (
	"context"
	"time"

	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/remote"
	"pooleddata/metrics"
	"pooleddata/metrics/trace"
)

// This file is the public face of the reconstruction cluster
// (internal/engine): N engine shards, each a scheme cache plus a
// batched decode pipeline, with schemes routed to their owning shard by
// spec hash — the one-design/many-signals regime a screening lab or
// feature-selection service runs, partitioned so concurrent designs
// never evict each other. cmd/pooledd serves exactly this API over
// HTTP.

// EngineOptions sizes an Engine.
type EngineOptions struct {
	// Shards is the number of engine shards; 0 means 1. Each shard owns a
	// private scheme cache and worker pool, and a scheme always lives on
	// the shard its (design, n, m, seed) spec hashes to — size up for
	// isolation between concurrent designs, down for maximum parallelism
	// on a single design.
	Shards int
	// CacheCapacity is the maximum number of cached schemes per shard;
	// 0 means 8.
	CacheCapacity int
	// Workers is the decode worker-pool size per shard; 0 splits
	// GOMAXPROCS evenly across the shards (at least one each).
	Workers int
	// QueueDepth bounds each shard's pending decode queue; 0 means
	// 4·Workers.
	QueueDepth int
	// TenantMaxActive bounds concurrently unfinished campaigns per
	// tenant (StartCampaign); 0 means unlimited.
	TenantMaxActive int
	// TenantMaxQueued bounds unsettled campaign jobs per tenant; 0 means
	// unlimited.
	TenantMaxQueued int
	// TenantWeights sets per-tenant dispatch weights for StartCampaign's
	// weighted fair queuing: a tenant with weight w is offered up to w
	// jobs per rotation turn. Unlisted tenants weigh 1 (equal turns).
	TenantWeights map[string]int
	// RemoteWorkers federates the engine across machines: a non-empty
	// list of `pooledd -worker` addresses (host:port) makes every shard
	// a remote client, one per address — schemes build locally (the
	// frontend keeps the graphs) and decode jobs run on the workers,
	// with health probes and bounded retry-then-fail failover. Shards,
	// CacheCapacity, Workers, and QueueDepth are ignored in this mode.
	//
	// The boot list is a starting point, not a commitment: membership
	// is elastic at runtime via AddRemoteWorker/RemoveWorker. Schemes
	// are placed on a consistent-hash ring over the members, so a
	// topology change moves only the arcs adjacent to the changed
	// member — the rest of the fleet keeps its caches warm.
	RemoteWorkers []string
	// MetricsRegistry, when set, receives the engine's observability
	// surface: pipeline counters and stage timers, per-shard gauges,
	// campaign-store gauges, and — with RemoteWorkers — the remote
	// transport's request timers and health-transition counters. Serve
	// it with MetricsRegistry.Handler() (Prometheus text exposition).
	// Nil records nothing at zero cost.
	MetricsRegistry *metrics.Registry
	// TraceStore enables span-level job tracing when > 0 (or when
	// TraceSample is set): every decode and campaign job builds a span
	// tree (queue wait, decode, wire stages on federated paths), and the
	// tail sampler retains errored jobs, jobs slower than the rolling
	// latency threshold, and a TraceSample fraction of the rest, in a
	// bounded ring of this capacity (0 with tracing on: 1024). Read the
	// retained traces back with TraceByID / RecentTraces.
	TraceStore int
	// TraceSample is the baseline retention rate for unremarkable job
	// traces, in [0, 1]. Sampling is deterministic per trace id.
	TraceSample float64
}

// EngineStats is a snapshot of an Engine's counters.
type EngineStats struct {
	// Scheme cache: builds executed, requests served from cache, requests
	// that joined an in-flight build instead of rebuilding, LRU evictions.
	SchemesBuilt  uint64
	CacheHits     uint64
	BuildsDeduped uint64
	Evictions     uint64

	// Decode pipeline.
	JobsSubmitted uint64
	JobsCompleted uint64
	JobsFailed    uint64
	JobsCanceled  uint64
	Consistent    uint64

	// JobsRejected counts decode jobs refused by admission control
	// because the owning shard's queue was saturated.
	JobsRejected uint64

	// Signals evaluated through the batched measurement path.
	SignalsMeasured uint64

	// Cumulative queue wait and decode time over completed jobs.
	TotalQueueWait  time.Duration
	TotalDecodeTime time.Duration

	// DecodeLatency are per-decoder latency histograms (merged across
	// shards), keyed by decoder name.
	DecodeLatency map[string]LatencyHistogram

	// JobsByNoise counts jobs that reached their decoder, keyed by the
	// canonical noise-model key ("exact", "gaussian(sigma=0.5)", ...).
	JobsByNoise map[string]uint64

	// Shards is the per-shard breakdown, one entry per engine shard.
	Shards []ShardStats
}

// LatencyHistogram is a bounded-bucket latency distribution: Counts has
// one bucket per BucketUpper edge plus a final overflow bucket.
type LatencyHistogram struct {
	// Count is the number of observations; Total their sum.
	Count uint64
	Total time.Duration
	// BucketUpper are the inclusive upper edges; len(Counts) is
	// len(BucketUpper)+1.
	BucketUpper []time.Duration
	Counts      []uint64
}

// ShardStats is one engine shard's view: cache and pipeline counters
// plus live queue gauges.
type ShardStats struct {
	// Shard is the shard index (what Spec hashes route to).
	Shard int
	// QueueDepth is the number of queued jobs right now; QueueCapacity
	// the configured bound; Workers the shard's pool size.
	QueueDepth, QueueCapacity, Workers int
	// CachedSchemes counts the shard's resident schemes.
	CachedSchemes int
	// Healthy is always true for local shards; remote shards report
	// their probe state. Addr is the worker address, empty for local
	// shards.
	Healthy bool
	Addr    string

	SchemesBuilt, CacheHits, Evictions         uint64
	JobsSubmitted, JobsCompleted, JobsRejected uint64
}

// DecodeResult is one pipelined reconstruction plus its per-job stats.
type DecodeResult struct {
	// Support is the recovered one-entry index set, ascending.
	Support []int
	// Decoder names the decoder that ran the job — for noisy requests
	// without an explicit decoder, the one the noise policy selected.
	Decoder string
	// QueueWait is how long the job sat in the queue before a worker
	// picked it up.
	QueueWait time.Duration
	// DecodeTime is the time spent inside the decoder.
	DecodeTime time.Duration
	// Residual is the L1 misfit of the estimate against the counts.
	Residual int64
	// Consistent reports whether the estimate reproduces the counts
	// exactly.
	Consistent bool
}

// Engine is a sharded reconstruction cluster: it amortizes design
// construction across requests (per-shard LRU scheme caches with build
// deduplication), pipelines decode jobs through each shard's bounded
// worker pool, and routes every scheme to the shard owning its spec
// hash. Safe for concurrent use; release the workers with Close when
// done.
type Engine struct {
	inner     *engine.Cluster
	campaigns *campaign.Store
	reg       *metrics.Registry
	traces    *trace.Store
}

// NewEngine starts an engine cluster — local shards, or remote shard
// clients when RemoteWorkers is set.
func NewEngine(opts EngineOptions) *Engine {
	var traces *trace.Store
	if opts.TraceStore > 0 || opts.TraceSample > 0 {
		traces = trace.NewStore(trace.Config{Capacity: opts.TraceStore, SampleRate: opts.TraceSample})
	}
	var inner *engine.Cluster
	if len(opts.RemoteWorkers) > 0 {
		shards := make([]engine.Shard, len(opts.RemoteWorkers))
		for i, addr := range opts.RemoteWorkers {
			shards[i] = remote.New(remote.Options{Addr: addr, Metrics: opts.MetricsRegistry})
		}
		inner = engine.NewClusterOf(shards...)
	} else {
		inner = engine.NewCluster(engine.ClusterConfig{
			Shards: opts.Shards,
			Shard: engine.Config{
				CacheCapacity: opts.CacheCapacity,
				Workers:       opts.Workers,
				QueueDepth:    opts.QueueDepth,
				Traces:        traces,
			},
		})
	}
	st := campaign.NewStore(inner, campaign.Config{
		TenantMaxActive: opts.TenantMaxActive,
		TenantMaxQueued: opts.TenantMaxQueued,
		TenantWeights:   opts.TenantWeights,
		Traces:          traces,
	})
	engine.RegisterClusterMetrics(opts.MetricsRegistry, inner)
	campaign.RegisterStoreMetrics(opts.MetricsRegistry, st)
	return &Engine{inner: inner, campaigns: st, reg: opts.MetricsRegistry, traces: traces}
}

// TraceByID returns a retained job trace — the span tree of one decode
// or campaign job — by its trace id. False when tracing is off, the id
// was never retained, or the ring evicted it.
func (e *Engine) TraceByID(id string) (*trace.Trace, bool) {
	return e.traces.Get(id)
}

// RecentTraces lists up to limit retained traces, newest first
// (limit <= 0 means 50). Nil when tracing is off.
func (e *Engine) RecentTraces(limit int) []*trace.Trace {
	return e.traces.Recent(trace.Filter{}, limit)
}

// Close stops the campaign dispatcher, drains every shard's decode
// queue, and stops the workers.
func (e *Engine) Close() {
	e.campaigns.Close()
	e.inner.Close()
}

// AddRemoteWorker joins a `pooledd -worker` at addr to the fleet at
// runtime. The new member takes over its consistent-hash arcs
// immediately: schemes whose keys land there are served by it from the
// next request on, and in-flight campaigns start offering it jobs.
// Fails on a duplicate address. Mixing a remote worker into a
// local-shard engine is allowed — the ring routes across both.
func (e *Engine) AddRemoteWorker(addr string) error {
	sh := remote.New(remote.Options{Addr: addr, Metrics: e.reg})
	if err := e.inner.AddShard(addr, sh); err != nil {
		sh.Close()
		return err
	}
	return nil
}

// RemoveWorker drains the fleet member with the given id (the worker
// address, or "local-<i>" for boot-time local shards) out of the ring
// and closes it. Its arcs move to the surviving members; queued
// campaign jobs that were bound for it re-dispatch through the ring
// rather than failing. Removing the last member is refused.
func (e *Engine) RemoveWorker(id string) error {
	sh, err := e.inner.RemoveShard(id)
	if err != nil {
		return err
	}
	sh.Close()
	return nil
}

// Members lists the current consistent-hash-ring membership, sorted.
func (e *Engine) Members() []string {
	return e.inner.MemberIDs()
}

// Stats returns a snapshot of the cluster counters: the fleet-wide
// aggregate plus the per-shard breakdown.
func (e *Engine) Stats() EngineStats {
	cs := e.inner.Stats()
	st := cs.Total
	out := EngineStats{
		SchemesBuilt:    st.SchemesBuilt,
		CacheHits:       st.CacheHits,
		BuildsDeduped:   st.BuildsDeduped,
		Evictions:       st.Evictions,
		JobsSubmitted:   st.JobsSubmitted,
		JobsCompleted:   st.JobsCompleted,
		JobsFailed:      st.JobsFailed,
		JobsCanceled:    st.JobsCanceled,
		JobsRejected:    st.JobsRejected,
		Consistent:      st.Consistent,
		SignalsMeasured: st.SignalsMeasured,
		TotalQueueWait:  st.TotalQueueWait,
		TotalDecodeTime: st.TotalDecodeTime,
		Shards:          make([]ShardStats, len(cs.Shards)),
	}
	if len(st.JobsByNoise) > 0 {
		out.JobsByNoise = make(map[string]uint64, len(st.JobsByNoise))
		for key, n := range st.JobsByNoise {
			out.JobsByNoise[key] = n
		}
	}
	if len(st.DecodeLatency) > 0 {
		out.DecodeLatency = make(map[string]LatencyHistogram, len(st.DecodeLatency))
		for name, h := range st.DecodeLatency {
			out.DecodeLatency[name] = fromEngineHistogram(h)
		}
	}
	for i, sh := range cs.Shards {
		out.Shards[i] = ShardStats{
			Shard:         sh.Shard,
			QueueDepth:    sh.QueueDepth,
			QueueCapacity: sh.QueueCapacity,
			Workers:       sh.Workers,
			CachedSchemes: sh.CachedSchemes,
			Healthy:       sh.Healthy,
			Addr:          sh.Addr,
			SchemesBuilt:  sh.SchemesBuilt,
			CacheHits:     sh.CacheHits,
			Evictions:     sh.Evictions,
			JobsSubmitted: sh.JobsSubmitted,
			JobsCompleted: sh.JobsCompleted,
			JobsRejected:  sh.JobsRejected,
		}
	}
	return out
}

func fromEngineHistogram(h engine.LatencyHistogram) LatencyHistogram {
	out := LatencyHistogram{
		Count:       h.Count,
		Total:       time.Duration(h.TotalNS),
		BucketUpper: make([]time.Duration, len(h.BucketUpperNS)),
		Counts:      append([]uint64(nil), h.Counts...),
	}
	for i, ub := range h.BucketUpperNS {
		out.BucketUpper[i] = time.Duration(ub)
	}
	return out
}

// Scheme returns the cached scheme for (n, m, opts), building it at most
// once: concurrent callers for the same (design, n, m, seed) share a
// single pooling build, and repeated calls return the identical *Scheme.
func (e *Engine) Scheme(n, m int, opts Options) (*Scheme, error) {
	des, err := designFor(opts.Design)
	if err != nil {
		return nil, err
	}
	es, err := e.inner.Scheme(des, n, m, opts.Seed)
	if err != nil {
		return nil, err
	}
	s := schemeFromEngine(es, opts.Workers)
	if s.workers != opts.Workers {
		// The cached wrapper carries the first caller's worker preference.
		// A caller asking for a different one gets its own thin wrapper
		// around the same shared graph and engine scheme.
		return newWrapper(es, opts.Workers), nil
	}
	return s, nil
}

// newWrapper builds a public Scheme over a cached engine scheme.
func newWrapper(es *engine.Scheme, workers int) *Scheme {
	s := &Scheme{n: es.G.N(), m: es.G.M(), g: es.G, seed: es.Spec.Seed, workers: workers, es: es}
	s.esOnce.Do(func() {}) // es is already set; spend the Once
	return s
}

// schemeFromEngine wraps a cached engine scheme exactly once: the wrapper
// is stored on the scheme itself, so cache hits stay pointer-identical
// across the public API and the wrapper dies with the cached scheme.
func schemeFromEngine(es *engine.Scheme, workers int) *Scheme {
	return es.Ext(func() any { return newWrapper(es, workers) }).(*Scheme)
}

// engineScheme returns the engine-side view of s, wrapping ad-hoc schemes
// (pooled.New, LoadDesignCSV) on first use.
func (s *Scheme) engineScheme() *engine.Scheme {
	s.esOnce.Do(func() {
		if s.es == nil {
			s.es = &engine.Scheme{G: s.g}
		}
	})
	return s.es
}

// Decode runs one reconstruction through the engine's worker pool and
// reports the per-job pipeline stats alongside the support.
func (e *Engine) Decode(ctx context.Context, s *Scheme, y []int64, k int, kind DecoderKind) (DecodeResult, error) {
	dec, err := decoderFor(kind, s.workers)
	if err != nil {
		return DecodeResult{}, err
	}
	res, err := e.inner.Decode(ctx, engine.Job{Scheme: s.engineScheme(), Y: y, K: k, Dec: dec})
	if err != nil {
		return DecodeResult{}, err
	}
	return fromEngineResult(res), nil
}

// DecodeBatch pipelines one decode per count vector through the worker
// pool — the batched counterpart of ReconstructWith. Results are in input
// order; the first error is returned after all jobs settle.
func (e *Engine) DecodeBatch(ctx context.Context, s *Scheme, ys [][]int64, k int, kind DecoderKind) ([]DecodeResult, error) {
	dec, err := decoderFor(kind, s.workers)
	if err != nil {
		return nil, err
	}
	results, err := e.inner.DecodeBatch(ctx, s.engineScheme(), ys, k, engine.Job{Dec: dec})
	out := make([]DecodeResult, len(results))
	for i, r := range results {
		out[i] = fromEngineResult(r)
	}
	return out, err
}

// MeasureBatch is Scheme.MeasureBatch routed through the engine so the
// batch shows up in its counters.
func (e *Engine) MeasureBatch(s *Scheme, signals [][]bool) [][]int64 {
	return e.inner.MeasureBatch(s.engineScheme(), s.batchVectors(signals), noise.Model{})
}

// MeasureBatchNoisy is MeasureBatch under a noise model: each signal's
// counts are perturbed with an independent, reproducible per-signal
// stream rooted at the model's seed, in the same single pass over the
// pooling matrix.
func (e *Engine) MeasureBatchNoisy(s *Scheme, signals [][]bool, nm NoiseModel) ([][]int64, error) {
	m := nm.internal()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return e.inner.MeasureBatch(s.engineScheme(), s.batchVectors(signals), m), nil
}

// DecodeNoisy runs one reconstruction of counts measured under the given
// noise model. The decoder is selected server-side by the noise policy
// (exact → MN, gaussian → swap-refined MN or the LP relaxation by σ,
// threshold → the threshold-GT decoder); DecodeResult.Decoder reports
// the pick, and Consistent is judged with the model's residual slack.
func (e *Engine) DecodeNoisy(ctx context.Context, s *Scheme, y []int64, k int, nm NoiseModel) (DecodeResult, error) {
	res, err := e.inner.Decode(ctx, engine.Job{Scheme: s.engineScheme(), Y: y, K: k, Noise: nm.internal()})
	if err != nil {
		return DecodeResult{}, err
	}
	return fromEngineResult(res), nil
}

// DecodeBatchNoisy pipelines one noisy decode per count vector through
// the worker pool — the batched counterpart of DecodeNoisy. Results are
// in input order; the first error is returned after all jobs settle.
func (e *Engine) DecodeBatchNoisy(ctx context.Context, s *Scheme, ys [][]int64, k int, nm NoiseModel) ([]DecodeResult, error) {
	results, err := e.inner.DecodeBatch(ctx, s.engineScheme(), ys, k, engine.Job{Noise: nm.internal()})
	out := make([]DecodeResult, len(results))
	for i, r := range results {
		out[i] = fromEngineResult(r)
	}
	return out, err
}

func fromEngineResult(r engine.Result) DecodeResult {
	return DecodeResult{
		Support:    r.Support,
		Decoder:    r.Decoder,
		QueueWait:  r.Stats.QueueWait,
		DecodeTime: r.Stats.DecodeTime,
		Residual:   r.Stats.Residual,
		Consistent: r.Stats.Consistent,
	}
}
