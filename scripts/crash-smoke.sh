#!/bin/sh
# Crash-recovery smoke test: boot a real pooledd with a WAL, SIGKILL it
# mid-campaign, restart it against the same directory, and assert the
# campaign finishes with a contiguous, duplicate-free event stream.
#
# The campaign is sized so a single worker chews through it slowly
# enough to guarantee the kill lands mid-flight: one shard, one worker,
# 160 jobs against a 6000x3000 scheme.
set -eu

tmp=$(mktemp -d)
addr=127.0.0.1:19396
base=http://$addr
pid=
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pooledd" ./cmd/pooledd

start() {
	"$tmp/pooledd" -addr "$addr" -shards 1 -shard-workers 1 \
		-wal-dir "$tmp/wal" -wal-fsync always 2>>"$tmp/pooledd.log" &
	pid=$!
	i=0
	while ! curl -sf "$base/v1/stats" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "crash-smoke: pooledd did not come up; log tail:" >&2
			tail -5 "$tmp/pooledd.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

fail() {
	echo "crash-smoke: $1" >&2
	exit 1
}

field() { # field NAME JSON -> first numeric value of "NAME"
	printf '%s' "$2" | sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p" | head -1
}

start

# Register the scheme and launch a 160-job campaign of all-zero counts
# (k=8 keeps the decoder scoring every candidate column per job).
curl -sf -X POST "$base/v1/schemes" \
	-d '{"design":"random-regular","n":6000,"m":3000,"seed":1}' >/dev/null ||
	fail "scheme registration failed"
row="[$(printf '0,%.0s' $(seq 1 2999))0]"
batch=$row
i=1
while [ "$i" -lt 160 ]; do
	batch="$batch,$row"
	i=$((i + 1))
done
printf '{"scheme":"s1","k":8,"batch":[%s]}' "$batch" >"$tmp/campaign.json"
created=$(curl -sf -X POST "$base/v1/campaigns" --data-binary @"$tmp/campaign.json") ||
	fail "campaign submission failed"
cid=$(printf '%s' "$created" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$cid" ] || fail "no campaign id in: $created"

# Let a handful of jobs settle, then kill the server dead — no signal
# handler, no graceful drain. The journal is all that survives.
i=0
while :; do
	p=$(curl -sf "$base/v1/campaigns/$cid") || fail "progress poll failed"
	settled=$(field completed "$p")
	[ "${settled:-0}" -ge 5 ] && break
	i=$((i + 1))
	[ "$i" -le 200 ] || fail "no jobs settled before kill"
	sleep 0.1
done
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=
echo "crash-smoke: killed pooledd with $settled/160 jobs settled"

# Restart against the same WAL dir: recovery must replay the settled
# prefix and re-dispatch the rest to completion.
start
i=0
while :; do
	p=$(curl -sf "$base/v1/campaigns/$cid") || fail "campaign $cid lost across restart"
	done_=$(field completed "$p")
	case "$p" in *'"state":"done"'*) [ "${done_:-0}" -eq 160 ] && break ;; esac
	case "$p" in *'"state":"failed"'* | *'"failed":[1-9]'*) fail "campaign failed after restart: $p" ;; esac
	i=$((i + 1))
	[ "$i" -le 600 ] || fail "campaign did not finish after restart: $p"
	sleep 0.1
done
echo "crash-smoke: campaign completed 160/160 after restart"

# The full event stream must be contiguous and duplicate-free: ids
# 1..161 (160 results + the terminal done event), exactly once each.
curl -sfN "$base/v1/campaigns/$cid/events?after=0" >"$tmp/stream" ||
	fail "event stream replay failed"
ids=$(sed -n 's/^id: //p' "$tmp/stream")
[ "$ids" = "$(seq 1 161)" ] || fail "event ids not contiguous 1..161 after recovery"
dups=$(sed -n 's/.*"index":\([0-9]*\).*/\1/p' "$tmp/stream" | sort -n | uniq -d)
[ -z "$dups" ] || fail "duplicate job indices in recovered stream: $dups"

# A client resuming from a pre-crash cursor sees only what it missed.
curl -sfN "$base/v1/campaigns/$cid/events?after=100" >"$tmp/resume" ||
	fail "cursor resume failed"
[ "$(sed -n 's/^id: //p' "$tmp/resume")" = "$(seq 101 161)" ] ||
	fail "resume from cursor 100 did not deliver ids 101..161"

curl -sf "$base/metrics" | grep -q '^pooled_wal_recovered_campaigns_total' ||
	fail "recovered-campaigns metric missing from /metrics"

echo "crash-smoke: OK (contiguous events, exactly-once delivery, recovery metric present)"
