#!/bin/sh
# Elastic-fleet smoke test: boot a frontend over one worker, start a
# campaign, register a second worker mid-flight through the membership
# API, SIGKILL the first worker, and assert the campaign still finishes
# with zero failed jobs while /v1/stats reflects the membership churn.
#
# The campaign is sized so a single worker chews through it slowly
# enough to guarantee both the join and the kill land mid-flight:
# single-shard workers, 160 jobs against a 6000x3000 scheme.
set -eu

tmp=$(mktemp -d)
w1=127.0.0.1:19404
w2=127.0.0.1:19405
fa=127.0.0.1:19406
base=http://$fa
w1pid=
w2pid=
fpid=
cleanup() {
	for p in "$w1pid" "$w2pid" "$fpid"; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pooledd" ./cmd/pooledd

fail() {
	echo "elastic-smoke: $1" >&2
	exit 1
}

field() { # field NAME JSON -> first numeric value of "NAME"
	printf '%s' "$2" | sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p" | head -1
}

wait_up() { # wait_up URL WHAT LOG
	i=0
	while ! curl -sf "$1" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "elastic-smoke: $2 did not come up; log tail:" >&2
			tail -5 "$3" >&2
			exit 1
		fi
		sleep 0.1
	done
}

"$tmp/pooledd" -worker -addr "$w1" -shards 1 -shard-workers 1 2>>"$tmp/w1.log" &
w1pid=$!
"$tmp/pooledd" -worker -addr "$w2" -shards 1 -shard-workers 1 2>>"$tmp/w2.log" &
w2pid=$!
"$tmp/pooledd" -addr "$fa" -workers "$w1" -evict-after 2 2>>"$tmp/frontend.log" &
fpid=$!
wait_up "http://$w1/metrics" "worker 1" "$tmp/w1.log"
wait_up "http://$w2/metrics" "worker 2" "$tmp/w2.log"
wait_up "$base/v1/stats" "frontend" "$tmp/frontend.log"

# Register the scheme and launch a 160-job campaign of all-zero counts
# (k=8 keeps the decoder scoring every candidate column per job).
curl -sf -X POST "$base/v1/schemes" \
	-d '{"design":"random-regular","n":6000,"m":3000,"seed":1}' >/dev/null ||
	fail "scheme registration failed"
row="[$(printf '0,%.0s' $(seq 1 2999))0]"
batch=$row
i=1
while [ "$i" -lt 160 ]; do
	batch="$batch,$row"
	i=$((i + 1))
done
printf '{"scheme":"s1","k":8,"batch":[%s]}' "$batch" >"$tmp/campaign.json"
created=$(curl -sf -X POST "$base/v1/campaigns" --data-binary @"$tmp/campaign.json") ||
	fail "campaign submission failed"
cid=$(printf '%s' "$created" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$cid" ] || fail "no campaign id in: $created"

# Let a handful of jobs settle on the lone worker, then grow the fleet
# through the membership API while the campaign is still in flight.
i=0
while :; do
	p=$(curl -sf "$base/v1/campaigns/$cid") || fail "progress poll failed"
	settled=$(field completed "$p")
	[ "${settled:-0}" -ge 5 ] && break
	i=$((i + 1))
	[ "$i" -le 200 ] || fail "no jobs settled before the join"
	sleep 0.1
done
curl -sf -X POST "$base/v1/workers" -d "{\"addr\":\"$w2\"}" >/dev/null ||
	fail "registering worker 2 mid-campaign failed"
echo "elastic-smoke: worker 2 joined with $settled/160 jobs settled"

# Kill the original worker dead — no drain, no goodbye. Its queued and
# in-flight jobs must re-dispatch to the survivor, not fail.
kill -9 "$w1pid"
wait "$w1pid" 2>/dev/null || true
w1pid=
echo "elastic-smoke: killed worker 1"

i=0
while :; do
	p=$(curl -sf "$base/v1/campaigns/$cid") || fail "progress poll failed after kill"
	case "$p" in *'"state":"failed"'*) fail "campaign failed after the kill: $p" ;; esac
	case "$p" in *'"state":"done"'*) break ;; esac
	i=$((i + 1))
	[ "$i" -le 1200 ] || fail "campaign did not finish after the kill: $p"
	sleep 0.1
done
completed=$(field completed "$p")
failed=$(field failed "$p")
canceled=$(field canceled "$p")
[ "${completed:-0}" -eq 160 ] || fail "completed=$completed, want 160"
[ "${failed:-0}" -eq 0 ] || fail "failed=$failed, want 0"
[ "${canceled:-0}" -eq 0 ] || fail "canceled=$canceled, want 0"
echo "elastic-smoke: campaign completed 160/160 with zero failed jobs"

# Membership must be visible in /v1/stats: the survivor in the member
# list, the join counted, and — once the probes give up on the corpse —
# the dead worker evicted from the ring.
i=0
while :; do
	stats=$(curl -sf "$base/v1/stats") || fail "stats poll failed"
	case "$stats" in *"\"$w2\""*) ;; *) fail "worker 2 missing from stats members: $stats" ;; esac
	adds=$(field membership_adds "$stats")
	[ "${adds:-0}" -ge 1 ] || fail "membership_adds=$adds, want >=1"
	removes=$(field membership_removes "$stats")
	if [ "${removes:-0}" -ge 1 ]; then
		if printf '%s' "$stats" | grep -qF "\"members\":[\"$w2\"]"; then
			break
		fi
		fail "worker 1 evicted but members list is $stats"
	fi
	i=$((i + 1))
	[ "$i" -le 100 ] || fail "dead worker never evicted from the ring: $stats"
	sleep 0.2
done
echo "elastic-smoke: stats shows the join and the eviction (members=[$w2])"

# The redispatch and ring series must be live on /metrics.
m=$(curl -sf "$base/metrics") || fail "metrics scrape failed"
printf '%s\n' "$m" | grep -q '^pooled_ring_members 1' ||
	fail "pooled_ring_members gauge is not 1 after the eviction"
printf '%s\n' "$m" | grep -q '^pooled_jobs_redispatched_total' ||
	fail "redispatch series missing from /metrics"
printf '%s\n' "$m" | grep -q '^pooled_ring_changes_total' ||
	fail "ring-change series missing from /metrics"

echo "elastic-smoke: OK (mid-flight join, zero failed jobs after SIGKILL, membership in stats)"
