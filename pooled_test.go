package pooled

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pooleddata/internal/rng"
)

// makeSignal returns a length-n signal with k ones at deterministic
// pseudo-random positions.
func makeSignal(n, k int, seed uint64) []bool {
	r := rng.NewRandSeeded(seed)
	s := make([]bool, n)
	for _, i := range r.SampleK(n, k) {
		s[i] = true
	}
	return s
}

func supportOf(signal []bool) []int {
	var out []int
	for i, b := range signal {
		if b {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEndToEndRoundTrip(t *testing.T) {
	n, k := 2000, 10
	m := RecommendedQueries(n, k)
	scheme, err := New(n, m, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	signal := makeSignal(n, k, 11)
	y := scheme.Measure(signal)
	got, err := scheme.Reconstruct(y, k)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, supportOf(signal)) {
		t.Fatalf("round trip failed: got %v want %v", got, supportOf(signal))
	}
	if !scheme.Consistent(got, y) {
		t.Fatal("reconstruction inconsistent with measurements")
	}
}

func TestSchemeAccessors(t *testing.T) {
	scheme, err := New(100, 30, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if scheme.N() != 100 || scheme.M() != 30 {
		t.Fatalf("N,M = %d,%d", scheme.N(), scheme.M())
	}
}

func TestPoolsShape(t *testing.T) {
	scheme, err := New(101, 12, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pools := scheme.Pools()
	if len(pools) != 12 {
		t.Fatalf("%d pools", len(pools))
	}
	for j, pool := range pools {
		if len(pool) != 51 { // Γ = ⌈101/2⌉
			t.Fatalf("pool %d has size %d, want 51", j, len(pool))
		}
		for _, c := range pool {
			if c < 0 || c >= 101 {
				t.Fatalf("pool %d references coordinate %d", j, c)
			}
		}
	}
}

func TestMeasureMatchesPools(t *testing.T) {
	scheme, err := New(60, 15, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	signal := makeSignal(60, 9, 4)
	y := scheme.Measure(signal)
	for j, pool := range scheme.Pools() {
		var want int64
		for _, c := range pool {
			if signal[c] {
				want++
			}
		}
		if y[j] != want {
			t.Fatalf("query %d: Measure %d vs pools %d", j, y[j], want)
		}
	}
}

func TestMeasurePanicsOnWrongLength(t *testing.T) {
	scheme, _ := New(10, 3, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	scheme.Measure(make([]bool, 9))
}

func TestAllDesignsBuild(t *testing.T) {
	for _, d := range []DesignKind{RandomRegular, Bernoulli, ConstantColumn} {
		scheme, err := New(200, 40, Options{Seed: 5, Design: d})
		if err != nil {
			t.Fatalf("design %d: %v", d, err)
		}
		signal := makeSignal(200, 5, 6)
		y := scheme.Measure(signal)
		if len(y) != 40 {
			t.Fatalf("design %d: %d results", d, len(y))
		}
	}
	if _, err := New(10, 5, Options{Design: DesignKind(99)}); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestAllDecodersRun(t *testing.T) {
	n, k := 150, 4
	m := RecommendedQueries(n, k)
	scheme, err := New(n, m, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	signal := makeSignal(n, k, 9)
	y := scheme.Measure(signal)
	want := supportOf(signal)
	for _, kind := range []DecoderKind{MN, MNRefined, BeliefPropagation, GreedyPeeling, ExhaustiveSearch, CompressedSensing} {
		got, err := scheme.ReconstructWith(y, k, kind)
		if err != nil {
			t.Fatalf("decoder %d: %v", kind, err)
		}
		if !equalInts(got, want) {
			t.Fatalf("decoder %d failed the easy instance", kind)
		}
	}
	if _, err := scheme.ReconstructWith(y, k, DecoderKind(99)); err == nil {
		t.Fatal("unknown decoder accepted")
	}
}

func TestMeasureNoisyDeterministicAndClose(t *testing.T) {
	scheme, err := New(500, 100, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	signal := makeSignal(500, 12, 11)
	a := scheme.MeasureNoisy(signal, 2)
	b := scheme.MeasureNoisy(signal, 2)
	clean := scheme.Measure(signal)
	var diff int64
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("noisy measurement not deterministic for fixed scheme seed")
		}
		d := a[j] - clean[j]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	if diff == 0 {
		t.Fatal("noise had no effect at σ=2 across 100 queries (implausible)")
	}
	if diff > 100*10 {
		t.Fatalf("noise too large: total |Δ| = %d", diff)
	}
}

func TestRecommendedQueriesOrdering(t *testing.T) {
	n, k := 10000, 16
	rec := RecommendedQueries(n, k)
	info := InformationLimit(n, k)
	if float64(rec) <= info {
		t.Fatalf("recommended %d must exceed the information limit %.0f", rec, info)
	}
	if rec <= 0 || rec > n {
		t.Fatalf("recommended queries %d out of sensible range", rec)
	}
}

func TestThetaExported(t *testing.T) {
	if th := Theta(10000, 16); th < 0.29 || th > 0.32 {
		t.Fatalf("Theta(10^4, 16) = %v, want ≈ 0.3", th)
	}
}

func TestConsistentRejectsWrongSupport(t *testing.T) {
	n, k := 300, 6
	scheme, err := New(n, RecommendedQueries(n, k), Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	signal := makeSignal(n, k, 13)
	y := scheme.Measure(signal)
	sup := supportOf(signal)
	if !scheme.Consistent(sup, y) {
		t.Fatal("true support must be consistent")
	}
	wrong := append([]int{}, sup...)
	wrong[0] = (wrong[0] + 1) % n
	if scheme.Consistent(wrong, y) {
		t.Fatal("perturbed support should be inconsistent w.h.p.")
	}
	if scheme.Consistent(sup, y[:len(y)-1]) {
		t.Fatal("short y should be rejected")
	}
}

func TestQuickRoundTripVariedSizes(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 200 + r.Intn(600)
		k := 2 + r.Intn(6)
		// RecommendedQueries targets w.h.p. success; the deterministic
		// round-trip check needs headroom at these small sizes.
		m := RecommendedQueries(n, k) * 8 / 5
		scheme, err := New(n, m, Options{Seed: seed})
		if err != nil {
			return false
		}
		signal := makeSignal(n, k, seed^0x5a5a)
		got, err := scheme.Reconstruct(scheme.Measure(signal), k)
		if err != nil {
			return false
		}
		return equalInts(got, supportOf(signal))
	}
	// Fixed generator: the w.h.p. guarantee leaves a small per-instance
	// failure probability, so the test pins its instance set.
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructApprox(t *testing.T) {
	n, k := 800, 8
	m := RecommendedQueries(n, k) * 2
	scheme, err := New(n, m, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	signal := makeSignal(n, k, 32)
	y := scheme.Measure(signal)
	got, err := scheme.ReconstructApprox(y, k)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, supportOf(signal)) {
		t.Fatalf("approx reconstruction failed: %v", got)
	}
	// A lower bound on k must still recover every true one-entry well
	// above threshold (the classifier does not clamp to the hint).
	gotLow, err := scheme.ReconstructApprox(y, k-3)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int]bool{}
	for _, i := range supportOf(signal) {
		truth[i] = true
	}
	found := 0
	for _, i := range gotLow {
		if truth[i] {
			found++
		}
	}
	if found < k-1 {
		t.Fatalf("approx with low hint found only %d/%d ones", found, k)
	}
	// Validation.
	if _, err := scheme.ReconstructApprox(y[:3], k); err == nil {
		t.Fatal("short y accepted")
	}
	if _, err := scheme.ReconstructApprox(y, -1); err == nil {
		t.Fatal("negative hint accepted")
	}
}
