package pooled

import (
	"context"
	"sync"
	"testing"

	"pooleddata/internal/rng"
)

// These tests exist for `go test -race`: they hammer one cached Scheme
// from many goroutines — concurrent Measure + ReconstructWith across all
// decoder kinds, plus the engine pipeline — and assert every result
// matches the serial path.

// raceInstance is small enough that even ExhaustiveSearch stays cheap.
func raceInstance(t *testing.T) (int, int, int, [][]bool) {
	t.Helper()
	n, k, m := 80, 3, 70
	const signals = 4
	sigs := make([][]bool, signals)
	r := rng.NewRandSeeded(5)
	for s := range sigs {
		sig := make([]bool, n)
		for _, i := range r.SampleK(n, k) {
			sig[i] = true
		}
		sigs[s] = sig
	}
	return n, k, m, sigs
}

func TestSchemeConcurrentHammer(t *testing.T) {
	n, k, m, sigs := raceInstance(t)
	kinds := []DecoderKind{MN, MNRefined, BeliefPropagation, GreedyPeeling, ExhaustiveSearch, CompressedSensing}

	eng := NewEngine(EngineOptions{CacheCapacity: 2, Workers: 4})
	defer eng.Close()
	scheme, err := eng.Scheme(n, m, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference: one measurement and one decode per (signal, kind).
	ys := make([][]int64, len(sigs))
	want := make([][][]int, len(sigs))
	for s, sig := range sigs {
		ys[s] = scheme.Measure(sig)
		want[s] = make([][]int, len(kinds))
		for d, kind := range kinds {
			sup, err := scheme.ReconstructWith(ys[s], k, kind)
			if err != nil {
				t.Fatalf("serial %d/%d: %v", s, d, err)
			}
			want[s][d] = sup
		}
	}

	const goroutines = 12
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				s := (g + it) % len(sigs)
				d := (g * 7) % len(kinds)

				// Cache hits must hand back the identical scheme.
				sc, err := eng.Scheme(n, m, Options{Seed: 3})
				if err != nil {
					errs <- err
					return
				}
				if sc != scheme {
					t.Error("concurrent cache hit returned a different *Scheme")
					return
				}
				y := sc.Measure(sigs[s])
				for j := range y {
					if y[j] != ys[s][j] {
						t.Errorf("concurrent Measure diverged at query %d", j)
						return
					}
				}
				sup, err := sc.ReconstructWith(y, k, kinds[d])
				if err != nil {
					errs <- err
					return
				}
				if !equalInts(sup, want[s][d]) {
					t.Errorf("concurrent %v decode of signal %d diverged", kinds[d], s)
					return
				}
				// The engine pipeline must agree with the direct path.
				res, err := eng.Decode(context.Background(), sc, y, k, kinds[d])
				if err != nil {
					errs <- err
					return
				}
				if !equalInts(res.Support, want[s][d]) {
					t.Errorf("pipelined %v decode of signal %d diverged", kinds[d], s)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMeasureBatchMatchesMeasureConcurrently(t *testing.T) {
	n, k, m, sigs := raceInstance(t)
	_ = k
	scheme, err := New(n, m, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int64, len(sigs))
	for s, sig := range sigs {
		want[s] = scheme.Measure(sig)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ys := scheme.MeasureBatch(sigs)
			for s := range sigs {
				for j := range want[s] {
					if ys[s][j] != want[s][j] {
						t.Errorf("MeasureBatch diverged at signal %d query %d", s, j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
