GO ?= go

.PHONY: all build vet test test-full race bench bench-noise bench-stream bench-remote bench-kernels bench-smoke fuzz-seeds metrics-lint crash-smoke elastic-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast CI gate: -short skips the full figure sweeps, -race catches
# concurrency bugs in the engine/scheme paths.
test:
	$(GO) test -short -race ./...

# The full suite, including the slow sweeps (what the paper validation
# runs).
test-full:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark; sweeps are skipped by -short, the kernel
# and engine micro-benchmarks still run.
bench:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

# The noise subsystem's acceptance benchmark: batched per-signal noise
# path vs the exact batched path at B=32. -short skips the σ-sweep
# sub-benchmark (the slow part).
bench-noise:
	$(GO) test -short -run '^$$' -bench 'BenchmarkNoisyBatchDecode' -benchtime 1x .

# The streaming subsystem's benchmark: B settled campaign jobs fanned
# out to S concurrent event-stream subscribers.
bench-stream:
	$(GO) test -short -run '^$$' -bench 'BenchmarkCampaignStreaming' -benchtime 1x ./internal/campaign

# The federation benchmark: one decode through a worker over httptest
# loopback (JSON + HTTP + client queue) vs the same decode on a local
# shard — the per-job wire overhead a deployment amortizes by batching.
bench-remote:
	$(GO) test -short -run '^$$' -bench 'BenchmarkRemoteShardDecode' -benchtime 100x ./internal/remote

# Machine-readable kernel numbers: the decode kernels (bit-sliced batch
# vs scalar), the noisy batch path, and the remote/batched wire parity,
# written as BENCH_kernels.json (name -> ns/op, B/op, allocs/op) for CI
# to archive and for regression tooling to diff.
bench-kernels:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/benchjson ./cmd/benchjson; \
	{ $(GO) test -short -run '^$$' -benchmem \
	    -bench 'BenchmarkNoisyBatchDecode|BenchmarkMNDecode|BenchmarkQueryExecute|BenchmarkOneDesignManySignals|BenchmarkTraceOverhead' \
	    -benchtime 1x . ; \
	  $(GO) test -short -run '^$$' -benchmem \
	    -bench 'BenchmarkRemoteShardDecode' -benchtime 20x ./internal/remote ; } \
	| tee /dev/stderr | $$tmp/benchjson > BENCH_kernels.json
	@echo "wrote BENCH_kernels.json"

# One -race iteration of every benchmark: catches data races that only
# the benchmark drivers exercise (burst submits, coalesced senders)
# without paying for a timed run.
bench-smoke:
	$(GO) test -short -race -run '^$$' -bench . -benchtime 1x ./...

# Replay the checked-in fuzz corpus seeds (no open-ended fuzzing): the
# frame and WAL-record parsers must handle every archived hostile input
# cleanly.
fuzz-seeds:
	$(GO) test -run 'Fuzz' ./internal/remote ./internal/wal

# Scrape a live frontend + worker pair and run both expositions through
# promcheck (the in-repo, dependency-free Prometheus text-format linter).
# Catches malformed escaping, non-cumulative buckets, and duplicate
# series before a real Prometheus ever sees them. The fleet is churned
# through the membership API first, so the ring/membership series are
# linted with real values, not just their zero forms. Tracing is on, and
# the decode's span tree is fetched back through /v1/traces/{id} to
# assert it covers both tiers of the federation hop.
metrics-lint:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/pooledd ./cmd/pooledd; \
	$(GO) build -o $$tmp/promcheck ./cmd/promcheck; \
	$$tmp/pooledd -worker -addr 127.0.0.1:19390 -shards 2 & wpid=$$!; \
	$$tmp/pooledd -worker -addr 127.0.0.1:19391 -shards 2 & w2pid=$$!; \
	$$tmp/pooledd -addr 127.0.0.1:19392 -workers 127.0.0.1:19390 -wal-dir $$tmp/wal -trace-sample 1 & fpid=$$!; \
	trap 'kill $$wpid $$w2pid $$fpid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 1 50); do \
	  curl -sf http://127.0.0.1:19390/metrics >/dev/null && \
	  curl -sf http://127.0.0.1:19391/metrics >/dev/null && \
	  curl -sf http://127.0.0.1:19392/metrics >/dev/null && break; \
	  sleep 0.2; \
	done; \
	for i in $$(seq 1 50); do \
	  curl -sf http://127.0.0.1:19392/metrics | grep -q '^pooled_shard_healthy{.*} 1' && break; \
	  sleep 0.2; \
	done; \
	curl -sf -X POST http://127.0.0.1:19392/v1/schemes \
	  -d '{"design":"random-regular","n":400,"m":200,"seed":1}' >/dev/null; \
	curl -sf -X POST http://127.0.0.1:19392/v1/decode \
	  -d "{\"scheme\":\"s1\",\"k\":0,\"counts\":[$$(printf '0,%.0s' $$(seq 1 199))0]}" >$$tmp/decode.json; \
	tid=$$(sed -n 's/.*"trace_id":"\([^"]*\)".*/\1/p' $$tmp/decode.json); \
	test -n "$$tid" || { echo "metrics-lint: decode response carried no trace_id" >&2; exit 1; }; \
	curl -sf "http://127.0.0.1:19392/v1/traces/$$tid" >$$tmp/trace.json; \
	grep -q '"tier":"frontend"' $$tmp/trace.json || \
	  { echo "metrics-lint: trace $$tid has no frontend-tier span" >&2; exit 1; }; \
	grep -q '"tier":"worker"' $$tmp/trace.json || \
	  { echo "metrics-lint: trace $$tid has no worker-tier span" >&2; exit 1; }; \
	curl -sf -X POST http://127.0.0.1:19392/v1/workers \
	  -d '{"addr":"127.0.0.1:19391"}' >/dev/null; \
	curl -sf -X DELETE http://127.0.0.1:19392/v1/workers/127.0.0.1:19391 >/dev/null; \
	curl -sf http://127.0.0.1:19390/metrics | $$tmp/promcheck; \
	curl -sf http://127.0.0.1:19392/metrics | $$tmp/promcheck; \
	for i in $$(seq 1 20); do \
	  curl -sf http://127.0.0.1:19392/metrics >$$tmp/front.prom; \
	  grep -q '^pooled_scheme_load_jobs_total' $$tmp/front.prom && break; \
	  sleep 0.3; \
	done; \
	for series in pooled_wal_appends_total pooled_ring_members \
	  pooled_ring_changes_total pooled_jobs_redispatched_total \
	  pooled_scheme_migrations_total pooled_trace_offered_total \
	  pooled_trace_retained_total pooled_scheme_load_jobs_total; do \
	  grep -q "^$$series" $$tmp/front.prom || \
	    { echo "metrics-lint: $$series missing from frontend exposition" >&2; exit 1; }; \
	done; \
	grep -q '^pooled_ring_changes_total{op="add"} 1' $$tmp/front.prom || \
	  { echo "metrics-lint: ring add not counted after /v1/workers churn" >&2; exit 1; }; \
	grep -q '^pooled_ring_changes_total{op="remove"} 1' $$tmp/front.prom || \
	  { echo "metrics-lint: ring remove not counted after /v1/workers churn" >&2; exit 1; }; \
	echo "metrics-lint: worker and frontend expositions are clean"

# Crash-recovery end to end against a real binary: SIGKILL pooledd mid-
# campaign, restart it on the same -wal-dir, and assert the campaign
# completes with a contiguous, exactly-once event stream.
crash-smoke:
	sh scripts/crash-smoke.sh

# Elastic fleet end to end against real binaries: register a second
# worker mid-campaign over the membership API, SIGKILL the first, and
# assert zero failed jobs plus the membership churn in /v1/stats.
elastic-smoke:
	sh scripts/elastic-smoke.sh

clean:
	$(GO) clean ./...
