GO ?= go

.PHONY: all build vet test test-full race bench clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast CI gate: -short skips the full figure sweeps, -race catches
# concurrency bugs in the engine/scheme paths.
test:
	$(GO) test -short -race ./...

# The full suite, including the slow sweeps (what the paper validation
# runs).
test-full:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark; sweeps are skipped by -short, the kernel
# and engine micro-benchmarks still run.
bench:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
