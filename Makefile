GO ?= go

.PHONY: all build vet test test-full race bench bench-noise bench-stream bench-remote clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast CI gate: -short skips the full figure sweeps, -race catches
# concurrency bugs in the engine/scheme paths.
test:
	$(GO) test -short -race ./...

# The full suite, including the slow sweeps (what the paper validation
# runs).
test-full:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark; sweeps are skipped by -short, the kernel
# and engine micro-benchmarks still run.
bench:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

# The noise subsystem's acceptance benchmark: batched per-signal noise
# path vs the exact batched path at B=32. -short skips the σ-sweep
# sub-benchmark (the slow part).
bench-noise:
	$(GO) test -short -run '^$$' -bench 'BenchmarkNoisyBatchDecode' -benchtime 1x .

# The streaming subsystem's benchmark: B settled campaign jobs fanned
# out to S concurrent event-stream subscribers.
bench-stream:
	$(GO) test -short -run '^$$' -bench 'BenchmarkCampaignStreaming' -benchtime 1x ./internal/campaign

# The federation benchmark: one decode through a worker over httptest
# loopback (JSON + HTTP + client queue) vs the same decode on a local
# shard — the per-job wire overhead a deployment amortizes by batching.
bench-remote:
	$(GO) test -short -run '^$$' -bench 'BenchmarkRemoteShardDecode' -benchtime 100x ./internal/remote

clean:
	$(GO) clean ./...
