package pooled

import (
	"context"
	"testing"

	"pooleddata/internal/rng"
)

func TestEngineDecodeAndStats(t *testing.T) {
	eng := NewEngine(EngineOptions{CacheCapacity: 4, Workers: 2})
	defer eng.Close()

	n, k, m := 500, 7, 380
	scheme, err := eng.Scheme(n, m, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Pointer-identical on a public cache hit.
	again, err := eng.Scheme(n, m, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if again != scheme {
		t.Fatal("public cache hit returned a different *Scheme")
	}

	const batch = 5
	signals := make([][]bool, batch)
	r := rng.NewRandSeeded(31)
	for b := range signals {
		sig := make([]bool, n)
		for _, i := range r.SampleK(n, k) {
			sig[i] = true
		}
		signals[b] = sig
	}
	ys := eng.MeasureBatch(scheme, signals)
	for b := range signals {
		want := scheme.Measure(signals[b])
		for j := range want {
			if ys[b][j] != want[j] {
				t.Fatalf("engine MeasureBatch diverged from Measure at signal %d query %d", b, j)
			}
		}
	}

	results, err := eng.DecodeBatch(context.Background(), scheme, ys, k, MN)
	if err != nil {
		t.Fatal(err)
	}
	for b, res := range results {
		want, err := scheme.Reconstruct(ys[b], k)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(res.Support, want) {
			t.Fatalf("batched decode %d differs from Reconstruct", b)
		}
		if !res.Consistent || res.Residual != 0 {
			t.Fatalf("decode %d: residual=%d consistent=%v", b, res.Residual, res.Consistent)
		}
	}

	st := eng.Stats()
	if st.SchemesBuilt != 1 || st.CacheHits != 1 {
		t.Fatalf("cache stats = %+v, want 1 build and 1 hit", st)
	}
	if st.JobsCompleted != batch || st.Consistent != batch {
		t.Fatalf("pipeline stats = %+v, want %d completed consistent jobs", st, batch)
	}
	if st.SignalsMeasured != batch {
		t.Fatalf("signals measured = %d, want %d", st.SignalsMeasured, batch)
	}

	// Decoding through the engine also works for schemes built without it.
	adhoc, err := New(200, 150, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sig := make([]bool, 200)
	for _, i := range rng.NewRandSeeded(6).SampleK(200, 4) {
		sig[i] = true
	}
	y := adhoc.Measure(sig)
	res, err := eng.Decode(context.Background(), adhoc, y, 4, MN)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := adhoc.Reconstruct(y, 4)
	if !equalInts(res.Support, want) {
		t.Fatal("engine decode of ad-hoc scheme differs from Reconstruct")
	}
}

func TestShardedEngineFacade(t *testing.T) {
	eng := NewEngine(EngineOptions{Shards: 3, CacheCapacity: 2, Workers: 1})
	defer eng.Close()

	n, k, m := 300, 5, 240
	// Distinct seeds land on (generally) distinct shards; every scheme
	// keeps pointer identity on repeat requests regardless of placement.
	schemes := make(map[uint64]*Scheme)
	for seed := uint64(1); seed <= 4; seed++ {
		s, err := eng.Scheme(n, m, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		schemes[seed] = s
	}
	for seed, s := range schemes {
		again, err := eng.Scheme(n, m, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if again != s {
			t.Fatalf("seed %d: sharded cache hit returned a different *Scheme", seed)
		}
	}

	// Decodes route to the owning shard and still recover the signal.
	sig := make([]bool, n)
	for _, i := range rng.NewRandSeeded(77).SampleK(n, k) {
		sig[i] = true
	}
	y := schemes[1].Measure(sig)
	res, err := eng.Decode(context.Background(), schemes[1], y, k, MN)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("sharded decode inconsistent: %+v", res)
	}

	st := eng.Stats()
	if len(st.Shards) != 3 {
		t.Fatalf("got %d shard breakdowns, want 3", len(st.Shards))
	}
	var built, completed uint64
	for _, sh := range st.Shards {
		built += sh.SchemesBuilt
		completed += sh.JobsCompleted
	}
	if built != st.SchemesBuilt || built != 4 {
		t.Fatalf("shard builds sum %d, aggregate %d, want 4", built, st.SchemesBuilt)
	}
	if completed != st.JobsCompleted || completed != 1 {
		t.Fatalf("shard completions sum %d, aggregate %d, want 1", completed, st.JobsCompleted)
	}
	h, ok := st.DecodeLatency["mn"]
	if !ok || h.Count != 1 {
		t.Fatalf("facade latency histogram = %+v (ok=%v), want one mn observation", h, ok)
	}
	if len(h.Counts) != len(h.BucketUpper)+1 {
		t.Fatalf("histogram shape: %d counts for %d edges", len(h.Counts), len(h.BucketUpper))
	}
}

func TestNoisyFacade(t *testing.T) {
	eng := NewEngine(EngineOptions{Workers: 2})
	defer eng.Close()

	n, k, m := 400, 6, 320
	scheme, err := eng.Scheme(n, m, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 3
	signals := make([][]bool, batch)
	r := rng.NewRandSeeded(17)
	for b := range signals {
		sig := make([]bool, n)
		for _, i := range r.SampleK(n, k) {
			sig[i] = true
		}
		signals[b] = sig
	}
	nm := NoiseModel{Kind: "gaussian", Sigma: 0.5, Seed: 12}

	// Engine path and direct Scheme path perturb identically for equal
	// models (shared per-signal streams).
	ys, err := eng.MeasureBatchNoisy(scheme, signals, nm)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := scheme.MeasureBatchNoisy(signals, nm)
	if err != nil {
		t.Fatal(err)
	}
	noisy := false
	for b := range ys {
		exact := scheme.Measure(signals[b])
		for j := range ys[b] {
			if ys[b][j] != direct[b][j] {
				t.Fatalf("engine and scheme noisy paths diverged at (%d,%d)", b, j)
			}
			if ys[b][j] != exact[j] {
				noisy = true
			}
		}
	}
	if !noisy {
		t.Fatal("gaussian model changed nothing")
	}

	// DecodeNoisy selects the robust decoder server-side and recovers.
	res, err := eng.DecodeNoisy(context.Background(), scheme, ys[0], k, nm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoder != "mn-refined" {
		t.Fatalf("policy selected %q", res.Decoder)
	}
	want, err := scheme.Reconstruct(scheme.Measure(signals[0]), k)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(res.Support, want) {
		t.Fatalf("noisy decode support %v, want %v", res.Support, want)
	}
	if !res.Consistent {
		t.Fatalf("recovery not consistent within slack: %+v", res)
	}

	// Batch form, and per-model counters on the public stats.
	results, err := eng.DecodeBatchNoisy(context.Background(), scheme, ys, k, nm)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != batch {
		t.Fatalf("got %d results", len(results))
	}
	st := eng.Stats()
	if got := st.JobsByNoise["gaussian(sigma=0.5)"]; got != 1+batch {
		t.Fatalf("JobsByNoise = %v, want %d gaussian jobs", st.JobsByNoise, 1+batch)
	}

	// Invalid models are rejected at the facade.
	if _, err := eng.MeasureBatchNoisy(scheme, signals, NoiseModel{Kind: "poisson"}); err == nil {
		t.Fatal("invalid model accepted by MeasureBatchNoisy")
	}
	if _, err := eng.DecodeNoisy(context.Background(), scheme, ys[0], k, NoiseModel{Kind: "poisson"}); err == nil {
		t.Fatal("invalid model accepted by DecodeNoisy")
	}
}
